//! Per-run outcomes and cross-seed aggregation.

use irs_sim::{SimReport, Summary};
use irs_types::ProcessId;

/// What one simulated run produced, reduced to the quantities the
/// experiment tables report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Did the run end with all live processes agreeing on a live leader?
    pub stabilized: bool,
    /// Time (ticks) of the last leadership change, when stabilised.
    pub stabilization_ticks: Option<u64>,
    /// Simulated time at which the run stopped.
    pub final_ticks: u64,
    /// The final common leader, if any.
    pub leader: Option<ProcessId>,
    /// Whether that leader is the star centre of the assumption.
    pub leader_is_center: bool,
    /// How many distinct common leaders the run went through.
    pub distinct_leaders: usize,
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Assumption-constrained (`ALIVE`-class) messages sent.
    pub constrained_sent: u64,
    /// Other messages sent.
    pub other_sent: u64,
    /// Estimated bytes sent.
    pub bytes_sent: u64,
    /// Largest suspicion level / counter across live processes at the end.
    pub max_susp_level: u64,
    /// Smallest suspicion level / counter across live processes at the end —
    /// the level of the *least* suspected process. An algorithm whose
    /// suspicions truly stabilise keeps this small; one that merely happens
    /// to keep a stable arg-min while charging everybody lets it grow.
    pub min_susp_level: u64,
    /// Largest timer value (ticks) reported by live processes at the end.
    pub max_timer_ticks: u64,
    /// Largest within-process spread `max − min` of suspicion levels.
    pub susp_spread: u64,
    /// The bound `B` of Definition 3 computed from the final snapshots.
    pub theorem4_b: u64,
    /// Whether every entry is at most `B + 1` (Theorem 4).
    pub theorem4_holds: bool,
    /// Largest number of receiving rounds closed by any live process.
    pub rounds_closed: u64,
    /// How many processes crashed during the run.
    pub crashed: usize,
}

impl RunOutcome {
    /// Reduces a [`SimReport`] to an outcome. `center` is the star centre of
    /// the assumption the run used, if it had one.
    pub fn from_report(report: &SimReport, center: Option<ProcessId>) -> Self {
        let (b, holds) = irs_omega::invariants::theorem4_bound(&report.final_snapshots);
        let susp_spread = report
            .final_snapshots
            .iter()
            .flatten()
            .filter(|s| !s.susp_levels.is_empty())
            .map(|s| s.max_susp_level() - s.min_susp_level())
            .max()
            .unwrap_or(0);
        let max_timer_ticks = report
            .final_snapshots
            .iter()
            .flatten()
            .map(|s| s.gauge("max_timer_ticks").unwrap_or(s.timer_value))
            .max()
            .unwrap_or(0);
        let rounds_closed = report
            .final_snapshots
            .iter()
            .flatten()
            .map(|s| s.gauge("rounds_closed").unwrap_or(s.receiving_round))
            .max()
            .unwrap_or(0);
        let distinct_leaders = {
            let mut leaders: Vec<ProcessId> = Vec::new();
            for change in &report.leader_history {
                if let Some(l) = change.agreed {
                    if leaders.last() != Some(&l) {
                        leaders.push(l);
                    }
                }
            }
            leaders.len()
        };
        let leader = report.stabilization.map(|s| s.leader);
        RunOutcome {
            stabilized: report.is_stable(),
            stabilization_ticks: report.stabilization_ticks(),
            final_ticks: report.final_time.ticks(),
            leader,
            leader_is_center: center.is_some() && leader == center,
            distinct_leaders,
            messages_sent: report.counters.messages_sent,
            constrained_sent: report.counters.constrained_sent,
            other_sent: report.counters.other_sent,
            bytes_sent: report.counters.bytes_sent,
            max_susp_level: report.max_final_susp_level(),
            min_susp_level: report
                .final_snapshots
                .iter()
                .flatten()
                .filter(|s| !s.susp_levels.is_empty())
                .map(|s| s.min_susp_level())
                .min()
                .unwrap_or(0),
            max_timer_ticks,
            susp_spread,
            theorem4_b: b,
            theorem4_holds: holds,
            rounds_closed,
            crashed: report.crashed.len(),
        }
    }
}

/// Aggregation of the same scenario run under several seeds.
#[derive(Clone, Debug)]
pub struct Aggregate {
    /// Number of runs.
    pub runs: usize,
    /// Number of runs that stabilised.
    pub stabilized: usize,
    /// Stabilisation times of the stabilised runs.
    pub stab_time: Summary,
    /// Messages sent per run.
    pub messages: Summary,
    /// Bytes sent per run.
    pub bytes: Summary,
    /// Largest suspicion level observed in any run.
    pub max_susp_level: u64,
    /// Largest timer value observed in any run.
    pub max_timer_ticks: u64,
    /// Largest suspicion-level spread observed in any run.
    pub max_spread: u64,
    /// Whether Theorem 4's bound held in every run.
    pub theorem4_all_hold: bool,
    /// Number of runs whose final leader was the star centre.
    pub leader_was_center: usize,
    /// Distinct common leaders, averaged over runs.
    pub mean_distinct_leaders: f64,
}

impl Aggregate {
    /// Aggregates a batch of outcomes.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> Self {
        let stab_times: Vec<u64> = outcomes
            .iter()
            .filter_map(|o| o.stabilization_ticks)
            .collect();
        Aggregate {
            runs: outcomes.len(),
            stabilized: outcomes.iter().filter(|o| o.stabilized).count(),
            stab_time: Summary::from_samples(&stab_times),
            messages: Summary::from_samples(
                &outcomes.iter().map(|o| o.messages_sent).collect::<Vec<_>>(),
            ),
            bytes: Summary::from_samples(
                &outcomes.iter().map(|o| o.bytes_sent).collect::<Vec<_>>(),
            ),
            max_susp_level: outcomes.iter().map(|o| o.max_susp_level).max().unwrap_or(0),
            max_timer_ticks: outcomes
                .iter()
                .map(|o| o.max_timer_ticks)
                .max()
                .unwrap_or(0),
            max_spread: outcomes.iter().map(|o| o.susp_spread).max().unwrap_or(0),
            theorem4_all_hold: outcomes.iter().all(|o| o.theorem4_holds),
            leader_was_center: outcomes.iter().filter(|o| o.leader_is_center).count(),
            mean_distinct_leaders: if outcomes.is_empty() {
                0.0
            } else {
                outcomes
                    .iter()
                    .map(|o| o.distinct_leaders as f64)
                    .sum::<f64>()
                    / outcomes.len() as f64
            },
        }
    }

    /// `"k/n"` stabilisation cell.
    pub fn stab_cell(&self) -> String {
        format!("{}/{}", self.stabilized, self.runs)
    }

    /// Median stabilisation time cell (`"-"` when nothing stabilised).
    pub fn stab_time_cell(&self) -> String {
        if self.stabilized == 0 {
            "-".to_string()
        } else {
            format!("{}", self.stab_time.median())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_sim::{LeaderChange, TraceCounters};
    use irs_types::{Snapshot, Time};

    fn fake_report(stable: bool) -> SimReport {
        let snapshot = Snapshot {
            leader: ProcessId::new(1),
            susp_levels: vec![3, 1, 2],
            timer_value: 12,
            ..Snapshot::default()
        };
        SimReport {
            final_time: Time::from_ticks(5_000),
            counters: TraceCounters {
                messages_sent: 100,
                constrained_sent: 60,
                other_sent: 40,
                bytes_sent: 9_000,
                ..TraceCounters::default()
            },
            leader_history: vec![LeaderChange {
                at: Time::from_ticks(1_000),
                agreed: Some(ProcessId::new(1)),
            }],
            stabilization: stable.then_some(irs_sim::Stabilization {
                leader: ProcessId::new(1),
                at: Time::from_ticks(1_000),
            }),
            final_snapshots: vec![Some(snapshot.clone()), Some(snapshot), None],
            crashed: vec![ProcessId::new(2)],
            adversary: "test".into(),
        }
    }

    #[test]
    fn outcome_extracts_report_fields() {
        let o = RunOutcome::from_report(&fake_report(true), Some(ProcessId::new(1)));
        assert!(o.stabilized);
        assert_eq!(o.stabilization_ticks, Some(1_000));
        assert_eq!(o.leader, Some(ProcessId::new(1)));
        assert!(o.leader_is_center);
        assert_eq!(o.messages_sent, 100);
        assert_eq!(o.max_susp_level, 3);
        assert_eq!(o.min_susp_level, 1);
        assert_eq!(o.susp_spread, 2);
        assert_eq!(o.crashed, 1);
        assert_eq!(o.distinct_leaders, 1);
        // B = min over columns of the max = min(3,1,2) = 1; 3 > B+1 so the
        // bound does not hold for this synthetic snapshot.
        assert_eq!(o.theorem4_b, 1);
        assert!(!o.theorem4_holds);
    }

    #[test]
    fn outcome_without_center_or_stabilization() {
        let o = RunOutcome::from_report(&fake_report(false), None);
        assert!(!o.stabilized);
        assert_eq!(o.stabilization_ticks, None);
        assert!(!o.leader_is_center);
    }

    #[test]
    fn aggregate_counts_and_cells() {
        let stable = RunOutcome::from_report(&fake_report(true), Some(ProcessId::new(1)));
        let unstable = RunOutcome::from_report(&fake_report(false), Some(ProcessId::new(1)));
        let agg = Aggregate::from_outcomes(&[stable.clone(), stable, unstable]);
        assert_eq!(agg.runs, 3);
        assert_eq!(agg.stabilized, 2);
        assert_eq!(agg.stab_cell(), "2/3");
        assert_eq!(agg.stab_time_cell(), "1000");
        assert_eq!(agg.leader_was_center, 2);
        assert_eq!(agg.max_susp_level, 3);
        assert!(!agg.theorem4_all_hold);
        let empty = Aggregate::from_outcomes(&[]);
        assert_eq!(empty.stab_cell(), "0/0");
        assert_eq!(empty.stab_time_cell(), "-");
    }
}
