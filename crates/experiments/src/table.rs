//! Plain-text and CSV table rendering for experiment reports.

use std::fmt;

/// A rectangular table of results, rendered as aligned text (for the
/// terminal and EXPERIMENTS.md) or CSV (for plotting).
#[derive(Clone, Debug)]
pub struct Table {
    /// Table identifier, e.g. `"E2"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row must have exactly `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.id, self.title));
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers included).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0", "sample", &["algo", "stabilised", "time"]);
        t.push_row(vec!["fig3".into(), "yes".into(), "1234".into()]);
        t.push_row(vec!["timeout-all".into(), "no".into(), "-".into()]);
        t
    }

    #[test]
    fn text_is_aligned_and_contains_everything() {
        let text = sample().to_text();
        assert!(text.contains("E0 — sample"));
        assert!(text.contains("algo"));
        assert!(text.contains("timeout-all"));
        // Header/divider/rows lines present.
        assert!(text.lines().count() >= 5);
        // All data lines have the same length (alignment).
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines[0].len(), lines[1].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("X", "t", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",plain"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new("X", "t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn display_matches_text() {
        let t = sample();
        assert_eq!(format!("{t}"), t.to_text());
    }
}
