//! The experiment suite: one function per row-block of EXPERIMENTS.md.
//!
//! Every function returns a [`Table`] and takes a `quick` flag: `quick` runs
//! use fewer seeds, smaller systems and shorter horizons so that the whole
//! suite stays affordable inside CI and Criterion; the full runs are what
//! EXPERIMENTS.md records.

use crate::outcome::Aggregate;
use crate::scenario::{run_batch, Algorithm, Assumption, Background, Scenario};
use crate::table::Table;
use irs_consensus::{ConsensusProcess, Value};
use irs_omega::OmegaProcess;
use irs_sim::adversary::presets;
use irs_sim::{CrashPlan, SimConfig, Simulation};
use irs_types::{Duration, GrowthFn, ProcessId, SystemConfig, Time};

fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 3, 4, 5]
    }
}

/// E1 — Theorem 1: election under `A′` (rotating star every round), as a
/// function of the system size.
pub fn e1_election_under_a_prime(quick: bool) -> Table {
    let mut table = Table::new(
        "E1",
        "Eventual election under A' (rotating t-star, every round)",
        &[
            "n",
            "t",
            "algorithm",
            "stabilised",
            "median stab time",
            "median msgs",
            "leader=center",
        ],
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(4, 1), (8, 3)]
    } else {
        &[(4, 1), (8, 3), (16, 7), (32, 15)]
    };
    // Build every cell first, then fan all (scenario, seed) runs out at once.
    let mut cells = Vec::new();
    let mut scenarios = Vec::new();
    for &(n, t) in sizes {
        for algorithm in [Algorithm::Fig1, Algorithm::Fig3] {
            cells.push((n, t, algorithm));
            scenarios.push(
                Scenario::new("e1", n, t, algorithm, Assumption::RotatingStar)
                    .with_horizon(if quick { 120_000 } else { 250_000 }, 15_000)
                    .with_seeds(&seeds(quick)),
            );
        }
    }
    for ((n, t, algorithm), outcomes) in cells.into_iter().zip(run_batch(&scenarios)) {
        let agg = Aggregate::from_outcomes(&outcomes);
        table.push_row(vec![
            n.to_string(),
            t.to_string(),
            algorithm.label().to_string(),
            agg.stab_cell(),
            agg.stab_time_cell(),
            format!("{}", agg.messages.median()),
            format!("{}/{}", agg.leader_was_center, agg.runs),
        ]);
    }
    table
}

/// E2 — Theorems 2/3: election under the intermittent star `A`, as a
/// function of the gap bound `D`, contrasting Figure 1 with Figures 2/3.
pub fn e2_election_under_a(quick: bool) -> Table {
    e2_election_under_a_sized(quick, None)
}

/// [`e2_election_under_a`] at an explicit system size (`--n` on the command
/// line). The default (`None`) runs the paper-scale `n = 5, t = 2` grid; an
/// override runs a reduced large-`n` smoke grid — one gap bound, Figure 3
/// only, a shorter horizon sized so `n = 128` stays a few seconds of wall
/// clock — which is what the CI large-n job executes.
pub fn e2_election_under_a_sized(quick: bool, n_override: Option<usize>) -> Table {
    let (n, t) = match n_override {
        Some(n) => (n, (n - 1) / 2),
        None => (5, 2),
    };
    let large = n_override.is_some_and(|n| n > 16);
    let mut table = Table::new(
        "E2",
        &format!("Eventual election under A (intermittent rotating t-star), varying D (n = {n})"),
        &[
            "D",
            "algorithm",
            "stabilised",
            "median stab time",
            "distinct leaders",
        ],
    );
    let ds: &[u64] = if large {
        &[4]
    } else if quick {
        &[2, 8]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let algorithms: &[Algorithm] = if large {
        &[Algorithm::Fig3]
    } else {
        &[Algorithm::Fig1, Algorithm::Fig2, Algorithm::Fig3]
    };
    let horizon = if large {
        12_000
    } else if quick {
        150_000
    } else {
        300_000
    };
    let quiet = if large { 3_000 } else { 20_000 };
    let seed_list = if large { vec![1] } else { seeds(quick) };
    let mut cells = Vec::new();
    let mut scenarios = Vec::new();
    for &d in ds {
        for &algorithm in algorithms {
            cells.push((d, algorithm));
            // At n ≥ 128 the scenario defaults into the large-n
            // configuration: delta-encoded gossip with a periodic full
            // refresh (trace-equivalent in leader history; see the
            // delta_gossip tests).
            let s = Scenario::new("e2", n, t, algorithm, Assumption::Intermittent { d })
                .with_background(Background::Growing)
                .with_horizon(horizon, quiet)
                .with_seeds(&seed_list);
            scenarios.push(s);
        }
    }
    for ((d, algorithm), outcomes) in cells.into_iter().zip(run_batch(&scenarios)) {
        let agg = Aggregate::from_outcomes(&outcomes);
        table.push_row(vec![
            d.to_string(),
            algorithm.label().to_string(),
            agg.stab_cell(),
            agg.stab_time_cell(),
            format!("{:.1}", agg.mean_distinct_leaders),
        ]);
    }
    table
}

/// E3 — Lemmas 1/3: a crashed process's suspicion level keeps growing and
/// the leadership moves off it.
pub fn e3_crash_suspicion_growth(quick: bool) -> Table {
    let mut table = Table::new(
        "E3",
        "Crash of the elected leader: suspicion growth and re-election",
        &[
            "variant",
            "crashed proc",
            "stabilised",
            "final leader != crashed",
            "max susp of crashed",
            "max susp of leader",
        ],
    );
    for algorithm in [Algorithm::Fig1, Algorithm::Fig3] {
        let scenario = Scenario::new("e3", 5, 2, algorithm, Assumption::RotatingStar)
            .with_crash(0, 40_000)
            .with_horizon(if quick { 160_000 } else { 300_000 }, 20_000)
            .with_seeds(&seeds(quick));
        let outcomes = scenario.run();
        let agg = Aggregate::from_outcomes(&outcomes);
        let moved = outcomes
            .iter()
            .filter(|o| o.leader.is_some() && o.leader != Some(ProcessId::new(0)))
            .count();
        table.push_row(vec![
            algorithm.label().to_string(),
            "p1".to_string(),
            agg.stab_cell(),
            format!("{moved}/{}", agg.runs),
            agg.max_susp_level.to_string(),
            // For Fig3 the leader's level is within 1 of the minimum by Lemma 8.
            format!("spread<={}", agg.max_spread),
        ]);
    }
    table
}

/// E4 — Lemmas 2/4/5: once elected, the leader stops being suspected — the
/// agreement never changes again over a long horizon.
pub fn e4_suspicion_stabilisation(quick: bool) -> Table {
    let mut table = Table::new(
        "E4",
        "Suspicion stabilisation: leadership changes over a long run",
        &[
            "assumption",
            "algorithm",
            "stabilised",
            "distinct leaders",
            "last change (ticks)",
            "horizon",
        ],
    );
    let horizon = if quick { 200_000 } else { 500_000 };
    for assumption in [Assumption::RotatingStar, Assumption::Intermittent { d: 4 }] {
        let scenario = Scenario::new("e4", 5, 2, Algorithm::Fig3, assumption)
            .with_horizon(horizon, 0) // run the full horizon: stability must persist
            .with_seeds(&seeds(quick));
        let outcomes = scenario.run();
        let agg = Aggregate::from_outcomes(&outcomes);
        table.push_row(vec![
            assumption.label(),
            "fig3".to_string(),
            agg.stab_cell(),
            format!("{:.1}", agg.mean_distinct_leaders),
            agg.stab_time_cell(),
            horizon.to_string(),
        ]);
    }
    table
}

/// E5 — Lemma 8 / Theorem 4: with Figure 3 every variable except the round
/// numbers is bounded; Figures 1/2 are not.
pub fn e5_bounded_variables(quick: bool) -> Table {
    let mut table = Table::new(
        "E5",
        "Bounded variables (crashed process in the system, identical schedules)",
        &[
            "variant",
            "max susp level",
            "max timer (ticks)",
            "max spread",
            "B",
            "all <= B+1",
        ],
    );
    for algorithm in [Algorithm::Fig1, Algorithm::Fig2, Algorithm::Fig3] {
        let scenario = Scenario::new("e5", 5, 2, algorithm, Assumption::RotatingStar)
            .with_crash(1, 10_000)
            .with_horizon(if quick { 150_000 } else { 300_000 }, 0)
            .with_seeds(&seeds(quick)[..1.max(seeds(quick).len() / 2)]);
        let outcomes = scenario.run();
        let agg = Aggregate::from_outcomes(&outcomes);
        let b = outcomes.iter().map(|o| o.theorem4_b).max().unwrap_or(0);
        table.push_row(vec![
            algorithm.label().to_string(),
            agg.max_susp_level.to_string(),
            agg.max_timer_ticks.to_string(),
            agg.max_spread.to_string(),
            b.to_string(),
            if agg.theorem4_all_hold {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table
}

/// E6 — the assumption matrix: which algorithm stabilises under which
/// assumption. The paper's algorithm is the only one that covers every
/// column that admits Ω at all.
pub fn e6_assumption_matrix(quick: bool) -> Table {
    let assumptions = [
        Assumption::EventuallySynchronous,
        Assumption::TSource,
        Assumption::MovingSource,
        Assumption::MessagePattern,
        Assumption::Combined,
        Assumption::RotatingStar,
        Assumption::Intermittent { d: 4 },
    ];
    let algorithms = [
        Algorithm::Fig3,
        Algorithm::TimeoutAll,
        Algorithm::TSourceCounter,
        Algorithm::MessagePatternMMR,
    ];
    let mut headers: Vec<&str> = vec!["algorithm \\ assumption"];
    let labels: Vec<String> = assumptions.iter().map(|a| a.label()).collect();
    headers.extend(labels.iter().map(|s| s.as_str()));
    let mut table = Table::new(
        "E6",
        "Assumption matrix: runs stabilised / final min suspicion counter (growing background delays)",
        &headers,
    );
    // Full-horizon runs (no early stop): "stabilised" then means the
    // agreement reached was never disturbed again, which is the criterion
    // that separates the algorithms once the background delays have grown
    // large. The whole matrix is one batch: every (algorithm, assumption,
    // seed) simulation runs concurrently.
    let mut scenarios = Vec::new();
    for algorithm in algorithms {
        for assumption in assumptions {
            scenarios.push(
                Scenario::new("e6", 4, 1, algorithm, assumption)
                    .with_background(Background::Growing)
                    .with_horizon(if quick { 150_000 } else { 300_000 }, 0)
                    .with_seeds(if quick { &[1, 2] } else { &[1, 2, 3] }),
            );
        }
    }
    let mut results = run_batch(&scenarios).into_iter();
    for algorithm in algorithms {
        let mut row = vec![algorithm.label().to_string()];
        for _assumption in assumptions {
            let outcomes = results.next().expect("one result batch per cell");
            let agg = Aggregate::from_outcomes(&outcomes);
            // An algorithm genuinely covered by the assumption not only keeps
            // a stable leader, its suspicions of that leader *stop*: the
            // smallest final counter stays small. An algorithm outside its
            // assumption keeps charging every process forever even when its
            // arg-min output happens to look stable over the horizon.
            let settled = outcomes.iter().map(|o| o.min_susp_level).max().unwrap_or(0);
            row.push(format!("{} s={}", agg.stab_cell(), settled));
        }
        table.push_row(row);
    }
    table
}

/// E7 — Section 7: the `A_{f,g}` variant elects a leader when delays and
/// star gaps grow without bound, provided the algorithm knows `f` and `g`.
pub fn e7_fg_extension(quick: bool) -> Table {
    let mut table = Table::new(
        "E7",
        "A_{f,g}: growing timeliness bound and star gaps",
        &["f", "g", "algorithm", "stabilised", "median stab time"],
    );
    let f = GrowthFn::Log2;
    let g = GrowthFn::Log2;
    let cases = [
        ("log2", "log2", Algorithm::Fg { f, g }),
        ("log2", "log2", Algorithm::Fig3), // does not know f, g
    ];
    for (fl, gl, algorithm) in cases {
        let scenario = Scenario::new("e7", 5, 2, algorithm, Assumption::FgStar { d: 3, f, g })
            .with_horizon(if quick { 200_000 } else { 400_000 }, 25_000)
            .with_seeds(&seeds(quick));
        let agg = Aggregate::from_outcomes(&scenario.run());
        table.push_row(vec![
            fl.to_string(),
            gl.to_string(),
            algorithm.label().to_string(),
            agg.stab_cell(),
            agg.stab_time_cell(),
        ]);
    }
    table
}

/// Outcome of one consensus run used by [`e8_consensus`].
#[derive(Clone, Copy, Debug)]
pub struct ConsensusOutcome {
    /// Did every live process decide within the horizon?
    pub all_decided: bool,
    /// Time at which the last live process decided (or the horizon).
    pub decision_ticks: u64,
    /// Messages sent in total.
    pub messages: u64,
    /// Ballots started across all processes.
    pub ballots: u64,
}

/// Runs one Ω-based consensus instance to completion (or the horizon).
pub fn run_consensus_once(
    n: usize,
    t: usize,
    d: Option<u64>,
    crash_initial_leader: bool,
    horizon: u64,
    seed: u64,
) -> ConsensusOutcome {
    let system = SystemConfig::new(n, t).expect("invalid system");
    let center = ProcessId::new(n as u32 - 1);
    let dist = Background::Static.dist();
    let processes: Vec<ConsensusProcess<OmegaProcess>> = system
        .processes()
        .map(|id| {
            let mut p = ConsensusProcess::over_omega(id, system);
            p.propose(Value(1_000 + id.as_u32() as u64));
            p
        })
        .collect();
    // The initially elected Ω leader is p1 (smallest id, all levels zero).
    // Crashing it *before* its first ballot check (80 ticks) forces the
    // decision to wait for Ω to re-elect, which is the interesting case.
    let crashes = if crash_initial_leader {
        CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(60))
    } else {
        CrashPlan::new()
    };
    let adversary = match d {
        Some(d) => presets::intermittent_rotating_star(
            system,
            center,
            Duration::from_ticks(8),
            d,
            dist,
            seed,
        ),
        None => presets::rotating_star_a_prime(system, center, Duration::from_ticks(8), dist, seed),
    };
    let mut sim = Simulation::new(
        SimConfig::new(seed, Time::from_ticks(horizon)),
        processes,
        adversary,
        crashes,
    );
    sim.start();
    while sim.step() {
        let all = system
            .processes()
            .all(|p| sim.is_crashed(p) || sim.process(p).decision().is_some());
        if all {
            break;
        }
    }
    let all_decided = system
        .processes()
        .all(|p| sim.is_crashed(p) || sim.process(p).decision().is_some());
    let ballots = system
        .processes()
        .map(|p| sim.process(p).ballots_started())
        .sum();
    ConsensusOutcome {
        all_decided,
        decision_ticks: sim.now().ticks(),
        messages: sim.trace().counters.messages_sent,
        ballots,
    }
}

/// E8 — Theorem 5: Ω-based consensus decides under `A′` and `A`, with and
/// without a crash of the initially elected leader.
pub fn e8_consensus(quick: bool) -> Table {
    let mut table = Table::new(
        "E8",
        "Theorem 5: Omega-based consensus (n = 5, t = 2)",
        &[
            "assumption",
            "leader crash",
            "decided",
            "median decision time",
            "median msgs",
            "median ballots",
        ],
    );
    let horizon = if quick { 200_000 } else { 400_000 };
    let cases = [(None, false), (None, true), (Some(4u64), false)];
    for (d, crash) in cases {
        let runs: Vec<ConsensusOutcome> = seeds(quick)
            .iter()
            .map(|&seed| run_consensus_once(5, 2, d, crash, horizon, seed))
            .collect();
        let decided = runs.iter().filter(|r| r.all_decided).count();
        let med = |f: fn(&ConsensusOutcome) -> u64| {
            irs_sim::Summary::from_samples(&runs.iter().map(f).collect::<Vec<_>>()).median()
        };
        table.push_row(vec![
            match d {
                None => "rotating-star(A')".to_string(),
                Some(d) => format!("intermittent(A,D={d})"),
            },
            if crash { "yes".into() } else { "no".into() },
            format!("{decided}/{}", runs.len()),
            med(|r| r.decision_ticks).to_string(),
            med(|r| r.messages).to_string(),
            med(|r| r.ballots).to_string(),
        ]);
    }
    table
}

/// E9 — communication cost: messages and bytes per closed round, and how
/// the timer values compare between Figure 1 and Figure 3.
pub fn e9_message_cost(quick: bool) -> Table {
    let mut table = Table::new(
        "E9",
        "Communication cost per receiving round and timer growth",
        &[
            "n",
            "variant",
            "msgs/round",
            "ALIVE share",
            "bytes/round",
            "max timer (ticks)",
        ],
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(4, 1), (8, 3)]
    } else {
        &[(4, 1), (8, 3), (16, 7)]
    };
    for &(n, t) in sizes {
        for algorithm in [Algorithm::Fig1, Algorithm::Fig3] {
            let scenario = Scenario::new("e9", n, t, algorithm, Assumption::RotatingStar)
                .with_crash(0, 20_000)
                .with_horizon(if quick { 100_000 } else { 200_000 }, 0)
                .with_seeds(&seeds(quick)[..1])
                .with_center(ProcessId::new(n as u32 - 1));
            let o = &scenario.run()[0];
            let rounds = o.rounds_closed.max(1);
            table.push_row(vec![
                n.to_string(),
                algorithm.label().to_string(),
                format!("{:.1}", o.messages_sent as f64 / rounds as f64),
                format!(
                    "{:.0}%",
                    100.0 * o.constrained_sent as f64 / o.messages_sent.max(1) as f64
                ),
                format!("{:.0}", o.bytes_sent as f64 / rounds as f64),
                o.max_timer_ticks.to_string(),
            ]);
        }
    }
    table
}

/// E10 — sensitivity: stabilisation time as one parameter varies at a time.
pub fn e10_sensitivity(quick: bool) -> Table {
    let mut table = Table::new(
        "E10",
        "Sensitivity of stabilisation time (fig3, n = 5, t = 2)",
        &["parameter", "value", "stabilised", "median stab time"],
    );
    let horizon = if quick { 150_000 } else { 300_000 };
    let mut cells: Vec<(&str, String)> = Vec::new();
    let mut scenarios = Vec::new();
    // Gap bound D of the intermittent star.
    let ds: &[u64] = if quick { &[2, 8] } else { &[1, 2, 4, 8, 16] };
    for &d in ds {
        cells.push(("D", d.to_string()));
        scenarios.push(
            Scenario::new(
                "e10-d",
                5,
                2,
                Algorithm::Fig3,
                Assumption::Intermittent { d },
            )
            .with_horizon(horizon, 20_000)
            .with_seeds(&seeds(quick)),
        );
    }
    // Number of crashes (up to t).
    for crashes in 0..=2u32 {
        let mut s = Scenario::new(
            "e10-crashes",
            5,
            2,
            Algorithm::Fig3,
            Assumption::RotatingStar,
        )
        .with_horizon(horizon, 20_000)
        .with_seeds(&seeds(quick));
        for c in 0..crashes {
            s = s.with_crash(c, 20_000 + 10_000 * c as u64);
        }
        cells.push(("crashes", crashes.to_string()));
        scenarios.push(s);
    }
    // Timeliness bound delta of the star.
    let deltas: &[u64] = if quick {
        &[4, 32]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    for &delta in deltas {
        let mut s = Scenario::new("e10-delta", 5, 2, Algorithm::Fig3, Assumption::RotatingStar)
            .with_horizon(horizon, 20_000)
            .with_seeds(&seeds(quick));
        s.delta = Duration::from_ticks(delta);
        cells.push(("delta", delta.to_string()));
        scenarios.push(s);
    }
    for ((parameter, value), outcomes) in cells.into_iter().zip(run_batch(&scenarios)) {
        let agg = Aggregate::from_outcomes(&outcomes);
        table.push_row(vec![
            parameter.into(),
            value,
            agg.stab_cell(),
            agg.stab_time_cell(),
        ]);
    }
    table
}

/// Builds the Figure 3 instances of an `n`-process deployment
/// (`t = ⌊(n−1)/2⌋`, the largest consensus-compatible resilience).
fn deployment_omega(n: usize) -> Vec<irs_omega::OmegaProcess> {
    let system = SystemConfig::new(n, (n - 1) / 2).expect("valid deployment system");
    system
        .processes()
        .map(|id| OmegaProcess::fig3(id, system))
        .collect()
}

/// Polls a deployment until every node has made real protocol progress
/// (several ALIVE rounds) *and* all live nodes agree on a live leader;
/// returns the wall-clock latency, or `None` on timeout. Without the
/// progress gate the all-zero initial state counts as a trivial agreement
/// at t = 0.
fn await_agreement(
    cluster: &irs_runtime::NetCluster<OmegaProcess>,
    limit: std::time::Duration,
) -> Option<std::time::Duration> {
    let start = std::time::Instant::now();
    loop {
        let progressed = (0..cluster.n() as u32)
            .all(|i| cluster.snapshot(irs_types::ProcessId::new(i)).sending_round >= 5);
        if progressed && cluster.agreed_leader().is_some() {
            return Some(start.elapsed());
        }
        if start.elapsed() >= limit {
            return None;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

fn ms_cell(d: Option<std::time::Duration>) -> String {
    match d {
        Some(d) => format!("{}", d.as_millis()),
        None => "timeout".to_string(),
    }
}

/// E11 — deployment: the same Figure 3 state machines leave the simulator
/// and run over real transports (`irs-net` + `irs-runtime`), realising the
/// paper's Section 3 assumption families over real links. Four link
/// regimes: the in-memory mesh, real UDP sockets on localhost, a lossy
/// link model, and a B1931+24-style duty-cycle intermittency schedule that
/// darkens the current leader — forcing one re-election per off-window.
///
/// Wall-clock latencies vary with the host; compare regimes, not absolute
/// numbers. The UDP rows here run all sockets in one OS process; the
/// separate-OS-process deployment is `examples/socket_cluster.rs` and the
/// `socket_cluster` integration test.
pub fn e11_deployment(quick: bool) -> Table {
    use irs_net::{DutyCycle, FaultyLink, LinkModel, UdpTransport};
    use irs_runtime::{NetCluster, NodeConfig};
    use std::time::Duration as StdDuration;

    let mut table = Table::new(
        "E11",
        "Deployment: election and re-election over real transports and faulty links",
        &[
            "backend",
            "link model",
            "n",
            "elected",
            "election ms",
            "re-election",
        ],
    );
    let n = 8;
    let limit = StdDuration::from_secs(if quick { 20 } else { 40 });

    // Row 1/2: fault-free election + crashed-leader re-election over the
    // in-memory mesh and over real UDP sockets.
    for backend in ["mem", "udp"] {
        let config = NodeConfig::new(n);
        let cluster = match backend {
            "mem" => NetCluster::in_memory(deployment_omega(n), config),
            _ => {
                let sockets = UdpTransport::localhost_mesh(n).expect("bind localhost sockets");
                NetCluster::spawn(deployment_omega(n), sockets, config)
            }
        };
        let elected = await_agreement(&cluster, limit);
        let reelect = elected.and_then(|_| {
            let first = cluster.agreed_leader().expect("agreed");
            cluster.crash(first);
            let start = std::time::Instant::now();
            loop {
                if cluster.agreed_leader().is_some_and(|l| l != first) {
                    return Some(start.elapsed());
                }
                if start.elapsed() >= limit {
                    return None;
                }
                std::thread::sleep(StdDuration::from_millis(10));
            }
        });
        table.push_row(vec![
            backend.to_string(),
            "none".to_string(),
            n.to_string(),
            if elected.is_some() { "yes" } else { "no" }.to_string(),
            ms_cell(elected),
            format!("crash -> {} ms", ms_cell(reelect)),
        ]);
        cluster.shutdown();
    }

    // Row 3: seeded receiver-side loss. The algorithm needs only quorums of
    // per-round ALIVEs, so 20% uniform loss merely slows the election.
    {
        let drop_p = 0.2;
        let cluster = NetCluster::with_link_models(deployment_omega(n), NodeConfig::new(n), |p| {
            LinkModel::new(0x0E11_D20B ^ u64::from(p.as_u32())).with_drop_prob(drop_p)
        });
        let elected = await_agreement(&cluster, limit);
        table.push_row(vec![
            "mem".to_string(),
            format!("drop p={drop_p}"),
            n.to_string(),
            if elected.is_some() { "yes" } else { "no" }.to_string(),
            ms_cell(elected),
            "-".to_string(),
        ]);
        cluster.shutdown();
    }

    // Row 4: duty-cycle intermittency (the B1931+24 trace shape). Every
    // node has its own dark region on the model clock; each "off-window"
    // parks the clock inside the *current leader's* region until the
    // connected majority re-elects, then heals. One re-election per
    // off-window is the expected count.
    {
        use irs_net::ManualClock;
        let windows = if quick { 2 } else { 3 };
        let region = 10_000u64;
        let neutral = 900_000u64;
        let clock = ManualClock::new();
        clock.set(neutral);
        let cluster = NetCluster::with_link_models(deployment_omega(n), NodeConfig::new(n), |_| {
            let mut model = LinkModel::new(0x000E_11DC).with_manual_clock(clock.clone());
            for node in 0..n as u32 {
                let (period, width) = (1_000_000, 3_000);
                let start = u64::from(node) * region + 1_000;
                model = model.with_duty_cycle(DutyCycle {
                    node,
                    period,
                    on: period - width,
                    phase: period - width - start,
                });
            }
            model
        });
        let mut history: Vec<irs_types::ProcessId> = Vec::new();
        let mut reelections = 0usize;
        // Like `await_agreement`, gate on real round progress: the
        // all-default initial state trivially agrees at t = 0, and an
        // off-window parked before any actual election would measure
        // nothing.
        let settle = |exclude: Option<irs_types::ProcessId>| {
            let deadline = std::time::Instant::now() + limit;
            loop {
                let progressed = (0..cluster.n() as u32)
                    .all(|i| cluster.snapshot(irs_types::ProcessId::new(i)).sending_round > 5);
                if progressed {
                    if let Some(l) = cluster.agreed_leader() {
                        if Some(l) != exclude {
                            return Some(l);
                        }
                    }
                }
                if std::time::Instant::now() >= deadline {
                    return None;
                }
                std::thread::sleep(StdDuration::from_millis(10));
            }
        };
        if let Some(mut leader) = settle(None) {
            history.push(leader);
            for _ in 0..windows {
                clock.set(u64::from(leader.as_u32()) * region + 2_000); // dark
                std::thread::sleep(StdDuration::from_millis(300));
                clock.set(neutral); // healed
                match settle(Some(leader)) {
                    Some(next) => {
                        history.push(next);
                        reelections += 1;
                        leader = next;
                    }
                    None => break,
                }
            }
        }
        table.push_row(vec![
            "mem".to_string(),
            format!("duty-cycle, {windows} off-windows"),
            n.to_string(),
            if history.is_empty() { "no" } else { "yes" }.to_string(),
            "-".to_string(),
            format!("{reelections}/{windows} windows re-elected; leaders {history:?}"),
        ]);
        cluster.shutdown();
    }

    // Scaling curve: the multiplexed socket runtime ([`irs_runtime::MuxCluster`]).
    // One real UDP socket per process, `W = cores` reactor shard threads
    // serving all of them through the readiness runtime — where the `udp`
    // rows above park one blocking thread per socket. Quick mode runs the
    // n = 32 point; the full run adds n = 128 (the CI mux-smoke bound: the
    // election must converge on ≤ cores threads).
    {
        use irs_omega::{OmegaConfig, Variant};
        use irs_runtime::{MuxCluster, MuxConfig};
        let sizes: &[usize] = if quick { &[32] } else { &[32, 128] };
        for &size in sizes {
            let system = SystemConfig::new(size, (size - 1) / 2).expect("valid system");
            let (send_period, timeout_unit) = if size >= 64 { (300, 100) } else { (20, 10) };
            let processes: Vec<OmegaProcess> = system
                .processes()
                .map(|id| {
                    let mut c = OmegaConfig::new(system, Variant::Fig3)
                        .with_send_period(Duration::from_ticks(send_period))
                        .with_timeout_unit(Duration::from_ticks(timeout_unit));
                    if size >= 64 {
                        c = c.with_delta_gossip(8);
                    }
                    OmegaProcess::new(id, c)
                })
                .collect();
            let tick = if size >= 64 {
                StdDuration::from_millis(1)
            } else {
                StdDuration::from_micros(500)
            };
            let cluster = MuxCluster::spawn_udp(processes, MuxConfig { tick, workers: 0 })
                .expect("spawn mux cluster");
            let size_limit = StdDuration::from_secs(if size >= 64 { 120 } else { 60 });
            let start = std::time::Instant::now();
            let elected = loop {
                let progressed = (0..size as u32)
                    .all(|i| cluster.snapshot(ProcessId::new(i)).sending_round >= 3);
                if progressed && cluster.agreed_leader().is_some() {
                    break Some(start.elapsed());
                }
                if start.elapsed() >= size_limit {
                    break None;
                }
                std::thread::sleep(StdDuration::from_millis(10));
            };
            // Crash failover on the small point; at n = 128 the election
            // alone is the acceptance criterion.
            let reelect = (size < 64)
                .then(|| {
                    elected.and_then(|_| {
                        let first = cluster.agreed_leader().expect("agreed");
                        cluster.crash(first);
                        let start = std::time::Instant::now();
                        loop {
                            if cluster.agreed_leader().is_some_and(|l| l != first) {
                                break Some(start.elapsed());
                            }
                            if start.elapsed() >= size_limit {
                                break None;
                            }
                            std::thread::sleep(StdDuration::from_millis(10));
                        }
                    })
                })
                .flatten();
            table.push_row(vec![
                "mux-udp".to_string(),
                format!("none ({} shard threads)", cluster.worker_threads()),
                size.to_string(),
                if elected.is_some() { "yes" } else { "no" }.to_string(),
                ms_cell(elected),
                if size < 64 {
                    format!("crash -> {} ms", ms_cell(reelect))
                } else {
                    format!("{size} sockets on {} threads", cluster.worker_threads())
                },
            ]);
            cluster.shutdown();
        }
    }

    // Row 5 (full mode): loss injected over the *socket* backend — the two
    // new subsystems composed.
    if !quick {
        let drop_p = 0.15;
        let sockets: Vec<_> = UdpTransport::localhost_mesh(n)
            .expect("bind localhost sockets")
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                FaultyLink::new(
                    t,
                    LinkModel::new(0x000E_1105 ^ i as u64).with_drop_prob(drop_p),
                )
            })
            .collect();
        let cluster = NetCluster::spawn(deployment_omega(n), sockets, NodeConfig::new(n));
        let elected = await_agreement(&cluster, limit);
        table.push_row(vec![
            "udp".to_string(),
            format!("drop p={drop_p}"),
            n.to_string(),
            if elected.is_some() { "yes" } else { "no" }.to_string(),
            ms_cell(elected),
            "-".to_string(),
        ]);
        cluster.shutdown();
    }

    table
}

/// E12 — the service layer: the replicated KV store (Theorem 5's log with
/// a state machine on top) under client load, per transport backend.
///
/// Ops/s and latency percentiles come from the `irs-svc` load generator
/// (closed-loop clients saturate; the open-loop row fires on a fixed
/// interval). The leader-crash row kills the elected leader mid-load over
/// a seeded lossy link model and then *verifies* the service's contract:
/// every surviving replica holds identical applied state, and no
/// acked command was lost or reordered (`loadgen::check_consistency`).
///
/// Wall-clock numbers vary with the host; compare backends and regimes,
/// not absolute values.
pub fn e12_kv_service(quick: bool) -> Table {
    use irs_net::LinkModel;
    use irs_svc::loadgen::{
        check_consistency, closed_loop, open_loop, ClosedLoopOptions, OpenLoopOptions,
    };
    use irs_svc::{SvcCluster, SvcConfig, SvcReplica};
    use std::time::Duration as StdDuration;

    let mut table = Table::new(
        "E12",
        "Replicated KV service under load: ops/s and latency per backend",
        &[
            "backend", "regime", "n", "clients", "ops/s", "p50 us", "p99 us", "outcome",
        ],
    );
    let n = 5;
    let clients = if quick { 3 } else { 4 };
    let opts = ClosedLoopOptions {
        duration: StdDuration::from_secs(if quick { 2 } else { 5 }),
        op_deadline: StdDuration::from_secs(8),
        ..ClosedLoopOptions::default()
    };
    let mut push_row = |backend: &str,
                        regime: &str,
                        c: usize,
                        report: &irs_svc::loadgen::LoadReport,
                        outcome: String| {
        table.push_row(vec![
            backend.to_string(),
            regime.to_string(),
            n.to_string(),
            c.to_string(),
            format!("{:.0}", report.ops_per_sec()),
            report.latency.percentile(50.0).to_string(),
            report.latency.percentile(99.0).to_string(),
            outcome,
        ]);
    };

    // One closed-loop run to completion, generic over the backend's
    // transport type: drive the load, freeze the cluster, verify the
    // consistency contract against everything the clients were acked.
    fn closed_run<T: irs_net::Transport>(
        cluster: SvcCluster,
        cl: &mut [irs_svc::SvcClient<T>],
        opts: ClosedLoopOptions,
    ) -> (irs_svc::loadgen::LoadReport, String) {
        let (report, acked) = closed_loop(cl, opts);
        let finals = cluster.shutdown();
        let refs: Vec<&SvcReplica> = finals.iter().collect();
        let outcome = match check_consistency(&refs, &acked) {
            Ok(()) => format!("{} acked, replicas identical", report.ops),
            Err(e) => format!("INCONSISTENT: {e}"),
        };
        (report, outcome)
    }

    // Rows 1–3: closed-loop saturation over the in-memory mesh, over real
    // UDP sockets (one blocking thread per endpoint), and over the
    // multiplexed socket runtime (same sockets, `W = cores` reactor shard
    // threads for all the replicas) — the same workload, so the mux row
    // measures what the readiness runtime costs or buys over thread-per-
    // socket blocking I/O.
    for backend in ["mem", "udp", "mux-udp"] {
        let (report, outcome) = match backend {
            "mem" => {
                let (cluster, mut cl) =
                    SvcCluster::in_memory(n, clients, SvcConfig::new(n, clients));
                closed_run(cluster, &mut cl, opts)
            }
            "udp" => {
                let (cluster, mut cl) =
                    SvcCluster::udp(n, clients, SvcConfig::new(n, clients)).expect("bind sockets");
                closed_run(cluster, &mut cl, opts)
            }
            _ => {
                let (cluster, mut cl) =
                    SvcCluster::mux_udp(n, clients, 0, SvcConfig::new(n, clients))
                        .expect("bind sockets");
                closed_run(cluster, &mut cl, opts)
            }
        };
        push_row(backend, "closed-loop", clients, &report, outcome);
    }

    // Batching × pipelining grid over the mem backend (the
    // decision-latency lever: up to `b` commands per slot, `d` slots in
    // flight). Compaction stays on, and every row keeps the machine-checked
    // consistency verdict. Quick mode runs the headline cell only.
    let grid: &[(usize, u64)] = if quick {
        &[(8, 4)]
    } else {
        &[(8, 1), (1, 4), (8, 4), (16, 8)]
    };
    for &(b, d) in grid {
        let config = SvcConfig::new(n, clients)
            .with_batching(b, d)
            .with_snapshot_interval(256);
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, config);
        let (report, outcome) = closed_run(cluster, &mut cl, opts);
        push_row(
            "mem",
            &format!("closed b{b}xd{d}"),
            clients,
            &report,
            outcome,
        );
    }

    // Saturation rows: enough closed-loop clients that the pending queue
    // actually accumulates and slots carry real batches (with few clients
    // and a wide window every request gets its own slot, so the per-slot
    // ballot cost is never amortised). The unbatched row at the same client
    // count is the control: the gap between the two is what batching buys.
    {
        let sat_clients = if quick { 12 } else { 16 };
        for (b, d) in [(1usize, 1u64), (16, 4)] {
            let config = SvcConfig::new(n, sat_clients)
                .with_batching(b, d)
                .with_snapshot_interval(256);
            let (cluster, mut cl) = SvcCluster::in_memory(n, sat_clients, config);
            let (report, outcome) = closed_run(cluster, &mut cl, opts);
            push_row(
                "mem",
                &format!("closed b{b}xd{d}"),
                sat_clients,
                &report,
                outcome,
            );
        }
    }

    // Row 3: open-loop arrival-rate load (one client, fixed fire interval).
    {
        let (cluster, mut cl) = SvcCluster::in_memory(n, 1, SvcConfig::new(n, 1));
        let report = open_loop(
            &mut cl[0],
            OpenLoopOptions {
                duration: opts.duration,
                interval: StdDuration::from_millis(if quick { 5 } else { 2 }),
                ..OpenLoopOptions::default()
            },
        );
        cluster.shutdown();
        let outcome = format!("{} unacked at drain", report.failures);
        push_row("mem", "open-loop", 1, &report, outcome);
    }

    // Row 4: closed-loop under a seeded 10% receiver-side drop on every
    // replica link (clients see clean links; consensus rides the loss).
    {
        let (cluster, mut cl) =
            SvcCluster::with_link_models(n, clients, SvcConfig::new(n, clients), |p| {
                LinkModel::new(0x0E12_D20B ^ u64::from(p.as_u32())).with_drop_prob(0.1)
            });
        let (report, outcome) = closed_run(cluster, &mut cl, opts);
        push_row("mem+drop0.1", "closed-loop", clients, &report, outcome);
    }

    // Row 5: the leader goes dark mid-load (crash-stop under a lossy link
    // model) with the batched/pipelined path and compaction on. The cluster
    // must re-elect, the load must keep completing, and the survivors must
    // agree with the client-acked prefix — batches, pipelined slots and
    // truncated history included.
    {
        let obs = std::sync::Arc::new(irs_obs::Obs::new(n));
        let crash_config = SvcConfig::new(n, clients)
            .with_batching(8, 4)
            .with_snapshot_interval(64)
            .with_obs(obs.clone());
        let (cluster, mut cl) = SvcCluster::with_link_models(n, clients, crash_config, |p| {
            LinkModel::new(0x0E12_C4A5 ^ u64::from(p.as_u32())).with_drop_prob(0.05)
        });
        let crash_opts = ClosedLoopOptions {
            duration: StdDuration::from_secs(if quick { 4 } else { 8 }),
            op_deadline: StdDuration::from_secs(8),
            ..ClosedLoopOptions::default()
        };
        let (report, acked, crashed) = irs_svc::loadgen::closed_loop_with_leader_crash(
            &cluster,
            &mut cl,
            crash_opts,
            crash_opts.duration / 3,
        );
        // Idle settle so catch-up converges the survivors before freezing.
        irs_svc::loadgen::await_survivor_convergence(&cluster, crashed, StdDuration::from_secs(30));
        let finals = cluster.shutdown();
        let survivors: Vec<&SvcReplica> = finals
            .iter()
            .filter(|r| irs_types::Protocol::id(*r) != crashed)
            .collect();
        let outcome = match check_consistency(&survivors, &acked) {
            Ok(()) => format!(
                "leader {crashed} crashed; {} survivors identical, no acked op lost/reordered",
                survivors.len()
            ),
            Err(e) => {
                // A failed verdict is exactly what the flight recorder is
                // for: dump the per-node trace of the run's last events as
                // a CI-collectable artifact before reporting.
                let path = flight_recorder_artifact("e12-crash", &obs);
                format!("INCONSISTENT: {e} (flight recorder: {path})")
            }
        };
        push_row("mem+drop0.05", "crash b8xd4", clients, &report, outcome);
    }

    table
}

/// Child half of the E13 kill -9 row: one durable KV replica as its own OS
/// process, joining (or — when `IRS_E13_PORT` is set — *re*-joining with
/// its predecessor's port) the localhost UDP mesh, then reporting
/// `DIGEST <hex> <applied>` on `STOP`. Invoked from `main` when the
/// `IRS_E13_CHILD` environment variable names a replica id.
pub fn e13_child_main(id: u32, base: &std::path::Path) {
    use irs_net::reexec;
    use irs_svc::{run_svc_node, SvcConfig};
    use std::io::BufRead;
    use std::sync::atomic::Ordering;

    let n = 3;
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let transport = match std::env::var("IRS_E13_PORT") {
        Ok(port) => reexec::child_rejoin_mesh(&mut lines, n + 1, port.parse().expect("port env")),
        Err(_) => reexec::child_join_mesh(&mut lines, n + 1),
    };

    let config = SvcConfig::new(n, 1)
        .with_tick(std::time::Duration::from_micros(500))
        .with_data_dir(base);
    let replica = config.replica(ProcessId::new(id));
    let handle = irs_runtime::NodeHandle::new();
    let observer = handle.clone();
    let node = std::thread::spawn(move || run_svc_node(replica, transport, config, handle));
    for line in lines {
        if line.expect("stdin line").trim() == "STOP" {
            break;
        }
    }
    observer.stop.store(true, Ordering::SeqCst);
    let replica = node.join().expect("node thread");
    println!(
        "DIGEST {:x} {}",
        replica.store().digest(),
        replica.store().applied()
    );
}

/// The E13 kill -9 row: spawns three durable replica processes over real
/// UDP sockets, writes through a real client, SIGKILLs one replica
/// mid-service, keeps writing on the surviving majority, respawns the
/// victim with the same port and data directory, writes again, and then
/// machine-checks the verdict: identical digests everywhere (restarted
/// replica included), no acked write lost, and deterministic offline
/// replay of the victim's directory. Returns the verdict cell.
fn e13_kill9_verdict(quick: bool, base: &std::path::Path) -> String {
    use irs_net::{reexec, UdpTransport};
    use irs_svc::{SvcClient, SvcConfig};
    use std::time::Duration as StdDuration;

    let n = 3usize;
    let _ = std::fs::remove_dir_all(base);
    let (mut children, mut readers) = reexec::spawn_self_children(n, |id, cmd| {
        cmd.env("IRS_E13_CHILD", id.to_string())
            .env("IRS_E13_DIR", base);
    });
    let mut client_transport = UdpTransport::bind_localhost_retry().expect("bind client socket");
    let client_port = client_transport.local_addr().expect("client addr").port();
    let replica_ports = reexec::exchange_peer_table(&mut children, &mut readers, &[client_port]);
    let mut peers: Vec<_> = replica_ports
        .iter()
        .map(|&p| reexec::localhost(p))
        .collect();
    peers.push(reexec::localhost(client_port));
    client_transport.set_peers(peers);

    let mut client = SvcClient::new(ProcessId::new(n as u32), n, client_transport, 0xE13);
    let deadline = StdDuration::from_secs(40);
    let per_phase = if quick { 4u64 } else { 8 };
    let mut acked = 0u64;
    let put_phase = |client: &mut SvcClient<UdpTransport>, tag: &str, acked: &mut u64| {
        for k in 0..per_phase {
            if let Err(e) = client.put(format!("{tag}-{k}").as_bytes(), &k.to_le_bytes(), deadline)
            {
                return Err(format!("FAIL: `{tag}` put {k} not acked: {e:?}"));
            }
            *acked += 1;
        }
        Ok(())
    };

    if let Err(v) = put_phase(&mut client, "pre", &mut acked) {
        return v;
    }
    // kill -9 the initial leader: no flush, no drain, mid-service.
    let victim = 0usize;
    children.0[victim].kill().expect("SIGKILL child");
    children.0[victim].wait().expect("reap child");
    if let Err(v) = put_phase(&mut client, "down", &mut acked) {
        return v;
    }

    // Respawn with the same identity: same UDP port, same data directory.
    let (mut respawned, mut respawned_readers) = reexec::spawn_self_children(1, |_, cmd| {
        cmd.env("IRS_E13_CHILD", victim.to_string())
            .env("IRS_E13_DIR", base)
            .env("IRS_E13_PORT", replica_ports[victim].to_string());
    });
    let port = reexec::read_tagged_line(&mut respawned_readers[0], "PORT ", victim);
    if port.parse::<u16>() != Ok(replica_ports[victim]) {
        return format!(
            "FAIL: respawn bound port {port}, expected {}",
            replica_ports[victim]
        );
    }
    let table: Vec<String> = replica_ports
        .iter()
        .chain(std::iter::once(&client_port))
        .map(u16::to_string)
        .collect();
    reexec::send_line(&mut respawned.0[0], &format!("PEERS {}", table.join(" ")));
    children.0[victim] = respawned.0.remove(0);
    readers[victim] = respawned_readers.remove(0);

    if let Err(v) = put_phase(&mut client, "post", &mut acked) {
        return v;
    }
    // Let catch-up settle the rejoiner before freezing the cluster.
    std::thread::sleep(StdDuration::from_secs(2));
    reexec::broadcast_line(&mut children, "STOP");
    let digests: Vec<(String, u64)> = readers
        .iter_mut()
        .enumerate()
        .map(|(who, r)| {
            let line = reexec::read_tagged_line(r, "DIGEST ", who);
            let mut parts = line.split_whitespace();
            let digest = parts.next().expect("digest").to_string();
            let applied: u64 = parts.next().expect("applied").parse().expect("count");
            (digest, applied)
        })
        .collect();
    children.join_all();

    if !digests.iter().all(|d| d.0 == digests[0].0) {
        return format!("FAIL: replicas diverged after kill -9 + restart: {digests:?}");
    }
    if digests[0].1 < acked {
        return format!(
            "FAIL: acked {acked} writes but replicas applied only {}",
            digests[0].1
        );
    }
    // Deterministic replay: the victim's directory recovers to the same
    // state twice, and that state is what the restarted process reported.
    let recover = || {
        let config = SvcConfig::new(n, 1).with_data_dir(base);
        let replica = config.replica(ProcessId::new(victim as u32));
        (replica.store().digest(), replica.store().applied())
    };
    let (first, second) = (recover(), recover());
    if first != second {
        return format!("FAIL: offline recovery not deterministic: {first:?} vs {second:?}");
    }
    if format!("{:x}", first.0) != digests[victim].0 {
        return format!(
            "FAIL: offline recovery digest {:x} disagrees with restarted replica {}",
            first.0, digests[victim].0
        );
    }
    format!(
        "replicas identical, applied {} >= acked {acked}, offline replay deterministic",
        digests[0].1
    )
}

/// E13 — crash-restart durability. Rows 1–4 run the same closed-loop load
/// with durability dialled from off to fsync-every-commit: the ops/s and
/// latency spread is the measured price of the WAL (group commit amortises
/// it under load; `EveryN` trades a bounded suffix for throughput). Row 5
/// replays the fsync-always run's node-0 directory offline and checks the
/// recovered store is digest-identical to the live replica it crashed out
/// of. Row 6 is the full kill -9 + same-identity restart over OS processes
/// and real UDP sockets ([`e13_kill9_verdict`]).
///
/// Wall-clock numbers vary with the host (and with the filesystem under
/// the data directory — fsync on tmpfs is nearly free); compare regimes,
/// not absolute values.
pub fn e13_durability(quick: bool) -> Table {
    use irs_svc::loadgen::{check_consistency, closed_loop, ClosedLoopOptions};
    use irs_svc::{FsyncPolicy, SvcCluster, SvcConfig, SvcReplica};
    use std::time::Duration as StdDuration;

    let mut table = Table::new(
        "E13",
        "Crash-restart durability: WAL fsync policies, recovery replay, kill -9 restart",
        &[
            "scenario",
            "durability",
            "n",
            "ops/s",
            "p50 us",
            "p99 us",
            "verdict",
        ],
    );
    let n = 3;
    let clients = if quick { 2 } else { 4 };
    let base = std::env::temp_dir().join(format!("irs-e13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let opts = ClosedLoopOptions {
        duration: StdDuration::from_secs(if quick { 2 } else { 5 }),
        op_deadline: StdDuration::from_secs(8),
        ..ClosedLoopOptions::default()
    };

    let regimes: [(&str, Option<FsyncPolicy>); 4] = [
        ("none (baseline)", None),
        ("wal, fsync always", Some(FsyncPolicy::Always)),
        ("wal, fsync every 8", Some(FsyncPolicy::EveryN(8))),
        ("wal, no fsync (OS flush)", Some(FsyncPolicy::Never)),
    ];
    // Node-0 of the fsync-always run: its final live state and data
    // directory seed the recovery-replay row.
    let mut always_state: Option<((u64, u64), std::path::PathBuf)> = None;
    for (i, (label, policy)) in regimes.iter().enumerate() {
        let dir = base.join(format!("bench-{i}"));
        let mut config = SvcConfig::new(n, clients).with_snapshot_interval(256);
        if let Some(policy) = policy {
            config = config.with_data_dir(&dir).with_fsync(*policy);
        }
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, config);
        let (report, acked) = closed_loop(&mut cl, opts);
        let finals = cluster.shutdown();
        let refs: Vec<&SvcReplica> = finals.iter().collect();
        let verdict = match check_consistency(&refs, &acked) {
            Ok(()) => format!("{} acked, replicas identical", report.ops),
            Err(e) => format!("INCONSISTENT: {e}"),
        };
        if matches!(policy, Some(FsyncPolicy::Always)) {
            let store = finals[0].store();
            always_state = Some(((store.digest(), store.applied()), dir.clone()));
        }
        drop(finals); // close the WALs before any offline re-open
        table.push_row(vec![
            "closed-loop".to_string(),
            label.to_string(),
            n.to_string(),
            format!("{:.0}", report.ops_per_sec()),
            report.latency.percentile(50.0).to_string(),
            report.latency.percentile(99.0).to_string(),
            verdict,
        ]);
    }

    // Row 5: offline recovery replay of the fsync-always run's node-0
    // directory — snapshot install + WAL tail, no networking.
    {
        let ((digest, applied), dir) = always_state.expect("fsync-always row ran");
        let config = SvcConfig::new(n, clients).with_data_dir(&dir);
        let started = std::time::Instant::now();
        let recovered = config.replica(ProcessId::new(0));
        let elapsed = started.elapsed();
        let store = recovered.store();
        let verdict = if (store.digest(), store.applied()) == (digest, applied) {
            format!("recovered {applied} applied writes, digest matches live replica")
        } else {
            format!(
                "FAIL: recovered ({:x}, {}) but live replica was ({digest:x}, {applied})",
                store.digest(),
                store.applied()
            )
        };
        table.push_row(vec![
            "recovery replay".to_string(),
            "wal, fsync always".to_string(),
            n.to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{}", elapsed.as_micros()),
            verdict,
        ]);
    }

    // Row 6: kill -9 + same-identity restart across OS processes.
    let verdict = e13_kill9_verdict(quick, &base.join("kill9"));
    table.push_row(vec![
        "kill -9 + restart".to_string(),
        "wal, fsync always".to_string(),
        n.to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        verdict,
    ]);

    let _ = std::fs::remove_dir_all(&base);
    table
}

/// Writes the flight-recorder text dump of `obs` under `target/` (falling
/// back to the temp dir) and returns the path it landed at — the crash
/// artifact CI uploads when a verdict fails.
fn flight_recorder_artifact(tag: &str, obs: &irs_obs::Obs) -> String {
    let name = format!("{tag}-flight-recorder.txt");
    let target = std::path::Path::new("target");
    let path = if target.is_dir() {
        target.join(&name)
    } else {
        std::env::temp_dir().join(&name)
    };
    match std::fs::write(&path, obs.dump_trace()) {
        Ok(()) => path.display().to_string(),
        Err(e) => format!("<unwritable: {e}>"),
    }
}

/// E14 — Observability: what the instrumentation plane costs and what it
/// buys. The overhead rows run the same mem-backend closed-loop workload
/// with observability off, metrics-only, and metrics + flight recorder;
/// the acceptance bar is ≤ 3% throughput cost for the full mode (reported
/// as WARN, not failure, beyond that — single-core CI runners are noisy).
/// The forensics row crashes the leader of a durable, fully instrumented
/// cluster mid-load and verifies the flight-recorder dump actually tells
/// the story: leader-change and WAL-commit events leading up to the crash.
pub fn e14_observability(quick: bool) -> Table {
    use irs_obs::{EventKind, Obs};
    use irs_svc::loadgen::{check_consistency, closed_loop, ClosedLoopOptions};
    use irs_svc::{FsyncPolicy, SvcCluster, SvcConfig, SvcReplica};
    use std::sync::Arc;
    use std::time::Duration as StdDuration;

    let mut table = Table::new(
        "E14",
        "Observability: metrics/flight-recorder overhead and crash forensics",
        &[
            "mode", "n", "clients", "ops/s", "p50 us", "p99 us", "verdict",
        ],
    );
    let n = 5;
    let clients = if quick { 3 } else { 4 };
    let opts = ClosedLoopOptions {
        duration: StdDuration::from_secs(if quick { 2 } else { 5 }),
        op_deadline: StdDuration::from_secs(8),
        ..ClosedLoopOptions::default()
    };

    // One measured closed-loop run over the mem backend under the given
    // obs mode; returns ops/s alongside the report row fields.
    fn measured(
        n: usize,
        clients: usize,
        opts: ClosedLoopOptions,
        obs: Option<Arc<Obs>>,
    ) -> (irs_svc::loadgen::LoadReport, String) {
        let mut config = SvcConfig::new(n, clients);
        if let Some(obs) = obs {
            config = config.with_obs(obs);
        }
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, config);
        let (report, acked) = closed_loop(&mut cl, opts);
        let finals = cluster.shutdown();
        let refs: Vec<&SvcReplica> = finals.iter().collect();
        let verdict = match check_consistency(&refs, &acked) {
            Ok(()) => format!("{} acked, replicas identical", report.ops),
            Err(e) => format!("INCONSISTENT: {e}"),
        };
        (report, verdict)
    }

    // Warm-up (discarded): fault in code paths and thread pools so the
    // first measured row is not paying one-time costs the others skip.
    let warm = ClosedLoopOptions {
        duration: StdDuration::from_millis(500),
        ..opts
    };
    let _ = measured(n, clients, warm, None);

    // Median of three runs per mode: a single closed-loop run on a
    // contended runner jitters more than the ~3% effect under test, and
    // the median discards exactly the outlier runs (GC of another job, a
    // cold scheduler) that used to flip the gate.
    let mut ops_by_mode: Vec<(&str, f64)> = Vec::new();
    for mode in ["off", "metrics", "metrics+recorder"] {
        let mut runs: Vec<(irs_svc::loadgen::LoadReport, String)> = (0..3)
            .map(|_| {
                let obs = match mode {
                    "off" => None,
                    "metrics" => Some(Arc::new(Obs::metrics_only())),
                    _ => Some(Arc::new(Obs::new(n))),
                };
                measured(n, clients, opts, obs)
            })
            .collect();
        runs.sort_by(|a, b| a.0.ops_per_sec().total_cmp(&b.0.ops_per_sec()));
        let (report, verdict) = runs.swap_remove(1);
        ops_by_mode.push((mode, report.ops_per_sec()));
        table.push_row(vec![
            mode.to_string(),
            n.to_string(),
            clients.to_string(),
            format!("{:.0}", report.ops_per_sec()),
            report.latency.percentile(50.0).to_string(),
            report.latency.percentile(99.0).to_string(),
            verdict,
        ]);
    }

    // The ≤ 3% gate on the per-mode medians, still soft: even the median
    // jitters on a busy runner, so the row reports PASS/WARN with the
    // measured ratio instead of failing the suite.
    {
        let off = ops_by_mode[0].1.max(1.0);
        let full = ops_by_mode[2].1;
        let overhead = 100.0 * (1.0 - full / off);
        let verdict = if overhead <= 3.0 {
            format!("PASS: metrics+recorder costs {overhead:.1}% vs off (gate 3%)")
        } else {
            format!("WARN: metrics+recorder costs {overhead:.1}% vs off (gate 3%, noisy runner?)")
        };
        table.push_row(vec![
            "overhead gate".to_string(),
            n.to_string(),
            clients.to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            verdict,
        ]);
    }

    // Crash forensics: durable replicas, full instrumentation, leader
    // crashed mid-load. The dump must contain leader-change and WAL-commit
    // events leading up to the crash — the artifact a postmortem starts
    // from — and the survivors must still pass the consistency contract.
    {
        let base = std::env::temp_dir().join(format!("irs-e14-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        // The default ring is enough for forensics now that the recorder
        // tiers by severity: this row keeps loading the cluster for two
        // thirds of the run *after* the re-election, but the bulk traffic
        // can only evict other bulk events — the leader changes live in
        // the critical ring, and the crashed leader's ring freezes at the
        // crash with the WAL commits that precede it. (This row used to
        // hand-tune a 32k-deep ring to survive the same traffic.)
        let obs = Arc::new(Obs::new(n));
        let config = SvcConfig::new(n, clients)
            .with_batching(8, 4)
            .with_snapshot_interval(64)
            .with_data_dir(&base)
            .with_fsync(FsyncPolicy::EveryN(8))
            .with_obs(obs.clone());
        let crash_opts = ClosedLoopOptions {
            duration: StdDuration::from_secs(if quick { 4 } else { 8 }),
            op_deadline: StdDuration::from_secs(8),
            ..ClosedLoopOptions::default()
        };
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, config);
        let (report, acked, crashed) = irs_svc::loadgen::closed_loop_with_leader_crash(
            &cluster,
            &mut cl,
            crash_opts,
            crash_opts.duration / 3,
        );
        irs_svc::loadgen::await_survivor_convergence(&cluster, crashed, StdDuration::from_secs(30));
        let events = obs.recorder().expect("recorder attached").dump();
        let leader_changes = events
            .iter()
            .filter(|e| e.kind == EventKind::LeaderChange)
            .count();
        let wal_commits = events
            .iter()
            .filter(|e| e.kind == EventKind::WalCommit)
            .count();
        // The postmortem property itself: WAL commits *leading up to* the
        // re-election the crash forced. The dump is time-sorted and the
        // critical tier keeps every leader change (startup election
        // included), so the re-election is the *last* one; the commits
        // that precede it survive in the crashed leader's rings, frozen
        // at the crash.
        let reelection = events
            .iter()
            .rev()
            .find(|e| e.kind == EventKind::LeaderChange)
            .map(|e| e.at);
        let commits_before_change = reelection.is_some_and(|at| {
            events
                .iter()
                .any(|e| e.kind == EventKind::WalCommit && e.at < at)
        });
        let artifact = flight_recorder_artifact("e14-crash", &obs);
        let finals = cluster.shutdown();
        let survivors: Vec<&SvcReplica> = finals
            .iter()
            .filter(|r| irs_types::Protocol::id(*r) != crashed)
            .collect();
        let verdict = if leader_changes == 0 || wal_commits == 0 || !commits_before_change {
            format!(
                "FAIL: dump missing forensics (leader_change={leader_changes}, wal_commit={wal_commits}, commits_before_change={commits_before_change}) — {artifact}"
            )
        } else {
            match check_consistency(&survivors, &acked) {
                Ok(()) => format!(
                    "leader {crashed} crashed; dump has {leader_changes} leader_change + {wal_commits} wal_commit events, commits precede re-election ({artifact}); survivors consistent"
                ),
                Err(e) => format!("INCONSISTENT: {e} ({artifact})"),
            }
        };
        table.push_row(vec![
            "crash forensics".to_string(),
            n.to_string(),
            clients.to_string(),
            format!("{:.0}", report.ops_per_sec()),
            report.latency.percentile(50.0).to_string(),
            report.latency.percentile(99.0).to_string(),
            verdict,
        ]);
        let _ = std::fs::remove_dir_all(&base);
    }

    table
}

/// E15 — the live telemetry plane: scrape a running cluster over the wire
/// (no shared filesystem, no shared memory), merge the per-node registries
/// into one artifact, and machine-check the leader-reign SLO panel — on
/// clean UDP, under a receiver-side drop adversary, and under duty-cycle
/// intermittency; plus the default-ring crash-forensics window the
/// severity-tiered recorder now preserves without hand-tuning.
pub fn e15_live_telemetry(quick: bool) -> Table {
    use irs_net::{
        DutyCycle, FaultyLink, LinkModel, MemNetwork, Transport, TransportScraper, UdpTransport,
    };
    use irs_obs::collector::{check_conformance, parse_prometheus, ClusterScrape};
    use irs_obs::{EventKind, Obs};
    use irs_runtime::NodeHandle;
    use irs_svc::loadgen::{check_consistency, closed_loop, ClosedLoopOptions};
    use irs_svc::{run_svc_node, FsyncPolicy, SvcClient, SvcCluster, SvcConfig, SvcReplica};
    use std::sync::atomic::Ordering as AtomicOrdering;
    use std::sync::Arc;
    use std::time::Duration as StdDuration;

    let mut table = Table::new(
        "E15",
        "Live telemetry plane: scrape-over-UDP, collector merge, leader-reign SLO",
        &["row", "backend", "n", "clients", "ops/s", "verdict"],
    );
    let n = 5;
    let clients = if quick { 2 } else { 3 };
    let opts = ClosedLoopOptions {
        duration: StdDuration::from_secs(if quick { 2 } else { 4 }),
        op_deadline: StdDuration::from_secs(8),
        ..ClosedLoopOptions::default()
    };

    /// The machine-checked verdict over one collected artifact: the merge
    /// renders, parses back conformant, carries the reign panel for all
    /// `n` nodes, and reports a sane stable-reign fraction at or above the
    /// row's floor.
    fn artifact_verdict(
        scrape: &ClusterScrape,
        n: usize,
        min_stable: f64,
    ) -> Result<String, String> {
        let merged = scrape.render_prometheus()?;
        if !merged.contains("omega_reign_ms") {
            return Err("merged artifact is missing omega_reign_ms".into());
        }
        let exposition = parse_prometheus(&merged)?;
        check_conformance(&exposition)?;
        let stats = scrape
            .reign_stats()?
            .ok_or("merged artifact has no reign panel")?;
        if stats.nodes != n as u64 {
            return Err(format!("reign panel covers {} of {n} nodes", stats.nodes));
        }
        if stats.uptime_ms == 0 {
            return Err("reign panel reports zero uptime".into());
        }
        if !(0.0..=1.0).contains(&stats.stable_fraction) {
            return Err(format!(
                "stable-reign fraction {} outside [0, 1]",
                stats.stable_fraction
            ));
        }
        if stats.stable_fraction < min_stable {
            return Err(format!(
                "stable-reign fraction {:.3} below the row floor {min_stable}",
                stats.stable_fraction
            ));
        }
        Ok(format!("PASS: {}", stats.render()))
    }

    // Spawns one replica node thread per endpoint, each with its *own*
    // observability handle — the telemetry topology of the process-per-
    // node deployment (one registry per address space), which is what the
    // collector merge is for. A cluster-shared registry would make every
    // endpoint serve the same panel and the merge double-count it.
    fn spawn_per_node<T>(
        transports: Vec<T>,
        n: usize,
        clients: usize,
        obs: &[Arc<Obs>],
    ) -> (Vec<NodeHandle>, Vec<std::thread::JoinHandle<SvcReplica>>)
    where
        T: Transport + Send + 'static,
    {
        transports
            .into_iter()
            .enumerate()
            .map(|(i, transport)| {
                let config = SvcConfig::new(n, clients).with_obs(Arc::clone(&obs[i]));
                let replica = config.replica(ProcessId::new(i as u32));
                let handle = NodeHandle::new();
                let inner = handle.clone();
                let thread = std::thread::Builder::new()
                    .name(format!("irs-e15-{i}"))
                    .spawn(move || run_svc_node(replica, transport, config, inner))
                    .expect("spawn replica thread");
                (handle, thread)
            })
            .unzip()
    }

    // One row's worth of work, generic over the transport backend: drive
    // closed-loop load, scrape every replica live over the wire from the
    // collector endpoint mid-load, then settle, freeze the cluster and
    // check both the artifact verdict and the service consistency
    // contract. The settle window lets replicas behind an intermittent
    // link catch back up before the digests are compared.
    #[allow(clippy::too_many_arguments)]
    fn scrape_mid_load<T>(
        handles: Vec<NodeHandle>,
        threads: Vec<std::thread::JoinHandle<SvcReplica>>,
        mut cl: Vec<SvcClient<T>>,
        collector: T,
        n: usize,
        clients: usize,
        opts: ClosedLoopOptions,
        min_stable: f64,
        settle: StdDuration,
    ) -> (f64, String)
    where
        T: Transport + Send + 'static,
    {
        let load = std::thread::spawn(move || {
            let (report, acked) = closed_loop(&mut cl, opts);
            (report, acked, cl)
        });
        std::thread::sleep(opts.duration / 2);
        let mut scraper = TransportScraper::new(collector, ProcessId::new((n + clients) as u32))
            .with_timeout(StdDuration::from_millis(250))
            .with_retries(16);
        let scraped = ClusterScrape::collect(&mut scraper, n as u32);
        let (report, mut acked, mut cl) = load.join().expect("load thread");
        // Bounded convergence wait on the published snapshots. A replica
        // behind an intermittent link only notices the slots it missed
        // when newer log traffic arrives, so a silent cluster can stay
        // diverged forever — each poll therefore drives a short trickle
        // burst whose new slots give catch-up something to key off. The
        // trickle writes are acked writes like any others and join the
        // consistency input.
        let deadline = std::time::Instant::now() + settle;
        loop {
            let snaps: Vec<_> = handles
                .iter()
                .map(|h| h.snapshot.lock().expect("snapshot lock").clone())
                .collect();
            let converged = snaps.windows(2).all(|w| {
                w[0].gauge("kv_digest") == w[1].gauge("kv_digest")
                    && w[0].gauge("applied") == w[1].gauge("applied")
            });
            if converged || std::time::Instant::now() >= deadline {
                break;
            }
            let trickle = ClosedLoopOptions {
                duration: StdDuration::from_millis(100),
                op_deadline: StdDuration::from_secs(2),
                ..opts
            };
            let (_, extra) = closed_loop(&mut cl, trickle);
            acked.extend(extra);
            // Give the burst's tail a full duty-cycle period to replicate
            // before the digests are compared again.
            std::thread::sleep(StdDuration::from_millis(400));
        }
        for handle in &handles {
            handle.stop.store(true, AtomicOrdering::SeqCst);
        }
        let finals: Vec<SvcReplica> = threads
            .into_iter()
            .map(|t| t.join().expect("replica thread"))
            .collect();
        let refs: Vec<&SvcReplica> = finals.iter().collect();
        let verdict = match (scraped, check_consistency(&refs, &acked)) {
            (Err(e), _) => format!("FAIL: live scrape failed: {e}"),
            (_, Err(e)) => format!("FAIL: INCONSISTENT: {e}"),
            (Ok(scrape), Ok(())) => {
                artifact_verdict(&scrape, n, min_stable).unwrap_or_else(|e| format!("FAIL: {e}"))
            }
        };
        (report.ops_per_sec(), verdict)
    }

    // Row 1: clean localhost UDP — n replica node threads, each with its
    // own real socket, scraped mid-load through one extra collector
    // socket. The floor asks for a meaningfully stable cluster: most of
    // the scraped wall time under a reign at least 1024 check periods
    // long.
    {
        let mut mesh = UdpTransport::localhost_mesh(n + clients + 1).expect("bind sockets");
        let collector = mesh.pop().expect("collector endpoint");
        let client_eps = mesh.split_off(n);
        let obs: Vec<Arc<Obs>> = (0..n).map(|_| Arc::new(Obs::new(n))).collect();
        let mut replica_eps = mesh;
        for (i, t) in replica_eps.iter_mut().enumerate() {
            t.attach_obs(obs[i].registry());
        }
        let (handles, threads) = spawn_per_node(replica_eps, n, clients, &obs);
        let cl: Vec<SvcClient<UdpTransport>> = client_eps
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                SvcClient::new(
                    ProcessId::new((n + i) as u32),
                    n,
                    t,
                    0x0E15_C11E ^ (i as u64 + 1),
                )
            })
            .collect();
        let (ops, verdict) = scrape_mid_load(
            handles,
            threads,
            cl,
            collector,
            n,
            clients,
            opts,
            0.15,
            StdDuration::from_secs(10),
        );
        table.push_row(vec![
            "live scrape".to_string(),
            "udp".to_string(),
            n.to_string(),
            clients.to_string(),
            format!("{ops:.0}"),
            verdict,
        ]);
    }

    // Rows 2–3: the same live scrape with an adversary on every *replica*
    // link (receiver-driven, mirroring `SvcCluster::with_link_models`;
    // the client and collector endpoints stay clean, so what is under
    // stress is the consensus plane and the scrape plane riding the same
    // lossy sockets). Stability floors are lower: the adversary is
    // supposed to cost reign stability, the panel is supposed to show it.
    for (row, min_stable) in [("drop 0.2", 0.08), ("duty-cycle", 0.05)] {
        let mut mesh = MemNetwork::mesh(n + clients + 1);
        let collector = mesh.pop().expect("collector endpoint");
        let client_eps = mesh.split_off(n);
        let obs: Vec<Arc<Obs>> = (0..n).map(|_| Arc::new(Obs::new(n))).collect();
        let mut replica_eps: Vec<FaultyLink<irs_net::MemTransport>> = mesh
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let seed = 0x0E15_FA17 ^ (i as u64);
                let model = if row == "drop 0.2" {
                    LinkModel::new(seed).with_drop_prob(0.2)
                } else {
                    // Every replica dark for the last quarter of each
                    // 400 ms window (1 ms wall tick), phases staggered so
                    // the cluster never goes fully dark at once. Off
                    // windows are far shorter than the scraper's retry
                    // budget, so the scrape must still complete.
                    LinkModel::new(seed).with_duty_cycle(DutyCycle {
                        node: i as u32,
                        period: 400,
                        on: 300,
                        phase: (i as u64) * 80,
                    })
                };
                FaultyLink::new(t, model)
            })
            .collect();
        for (i, t) in replica_eps.iter_mut().enumerate() {
            t.attach_obs(obs[i].registry());
        }
        let (handles, threads) = spawn_per_node(replica_eps, n, clients, &obs);
        let cl: Vec<SvcClient<irs_net::MemTransport>> = client_eps
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                SvcClient::new(
                    ProcessId::new((n + i) as u32),
                    n,
                    t,
                    0x0E15_C11E ^ (i as u64 + 1),
                )
            })
            .collect();
        let (ops, verdict) = scrape_mid_load(
            handles,
            threads,
            cl,
            collector,
            n,
            clients,
            opts,
            min_stable,
            StdDuration::from_secs(15),
        );
        table.push_row(vec![
            format!("live scrape, {row}"),
            "mem+faulty".to_string(),
            n.to_string(),
            clients.to_string(),
            format!("{ops:.0}"),
            verdict,
        ]);
    }

    // Row 4: the crash-forensics window on the *default* ring. The
    // severity-tiered recorder must preserve the re-election and the WAL
    // commits that precede it without the 32k-deep ring E14 used to
    // hand-tune: leader changes live in the small critical ring, and the
    // crashed leader's rings freeze at the crash.
    {
        let base = std::env::temp_dir().join(format!("irs-e15-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let obs = Arc::new(Obs::new(n));
        let config = SvcConfig::new(n, clients)
            .with_batching(8, 4)
            .with_snapshot_interval(64)
            .with_data_dir(&base)
            .with_fsync(FsyncPolicy::EveryN(8))
            .with_obs(obs.clone());
        let crash_opts = ClosedLoopOptions {
            duration: StdDuration::from_secs(if quick { 3 } else { 6 }),
            op_deadline: StdDuration::from_secs(8),
            ..ClosedLoopOptions::default()
        };
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, config);
        let (report, acked, crashed) = irs_svc::loadgen::closed_loop_with_leader_crash(
            &cluster,
            &mut cl,
            crash_opts,
            crash_opts.duration / 3,
        );
        irs_svc::loadgen::await_survivor_convergence(&cluster, crashed, StdDuration::from_secs(30));
        let events = obs.recorder().expect("recorder attached").dump();
        // The dump is time-sorted and the critical tier preserves *every*
        // leader change (startup election included), so the re-election
        // the crash forced is the last one; the window property is that
        // WAL commits leading up to it survived — they live in the
        // crashed leader's rings, frozen at the crash.
        let reelection = events
            .iter()
            .rev()
            .find(|e| e.kind == EventKind::LeaderChange)
            .map(|e| e.at);
        let commits_before_change = reelection.is_some_and(|at| {
            events
                .iter()
                .any(|e| e.kind == EventKind::WalCommit && e.at < at)
        });
        let finals = cluster.shutdown();
        let survivors: Vec<&SvcReplica> = finals
            .iter()
            .filter(|r| irs_types::Protocol::id(*r) != crashed)
            .collect();
        let verdict = if reelection.is_none() || !commits_before_change {
            format!(
                "FAIL: default ring lost the crash window (leader_change seen: {}, wal_commit before it: {commits_before_change})",
                reelection.is_some()
            )
        } else {
            match check_consistency(&survivors, &acked) {
                Ok(()) => format!(
                    "PASS: default ring kept the window — leader {crashed} crashed, re-election and preceding wal_commit events survived"
                ),
                Err(e) => format!("FAIL: INCONSISTENT: {e}"),
            }
        };
        table.push_row(vec![
            "crash window, default ring".to_string(),
            "mem".to_string(),
            n.to_string(),
            clients.to_string(),
            format!("{:.0}", report.ops_per_sec()),
            verdict,
        ]);
        let _ = std::fs::remove_dir_all(&base);
    }

    table
}

/// E16 — The stable-reign fast path: what the phase-1 skip and the leader
/// lease buy, and whether the read tiers keep their promises under load.
///
/// * **Mix rows** run an in-memory n = 5 cluster under a deterministic
///   read/write mix (95/5 read-heavy and 50/50 balanced) at each
///   [`irs_svc::ReadTier`]. Every run's reads are machine-checked against
///   the acked write order (`check_read_linearizability`) and its writes
///   against the surviving state (`check_consistency`) — the verdict is
///   the checker's, not an eyeball's. Lease reads never leave the leader,
///   so at 95/5 they should beat read-index reads (which pay a probe
///   round) by a wide margin; the summary row asserts ≥ 3×.
/// * **Crash row** kills the agreed leader mid-run while its lease may
///   still be live — the scenario the lease clock-safety argument (see
///   `irs_svc::replica` module docs) must survive. PASS requires reads to
///   stay linearizable across the reign change and no acked write lost.
/// * **Skip rows** run the same write-only load with the phase-1 skip on
///   and off (`SvcConfig::with_phase1_skip`) and read the consensus
///   counters: with the skip on, slots open directly in phase 2 under one
///   reign-scoped prepare; the baseline pays a prepare broadcast per
///   slot. The verdict carries the counter delta.
pub fn e16_stable_reign_fast_path(quick: bool) -> Table {
    use irs_svc::loadgen::{
        check_consistency, check_read_linearizability, closed_loop, mixed_loop,
        mixed_loop_with_leader_crash, ClosedLoopOptions, MixedLoopOptions,
    };
    use irs_svc::{ReadTier, SvcCluster, SvcConfig, SvcReplica};
    use irs_types::Protocol;
    use std::time::Duration as StdDuration;

    let mut table = Table::new(
        "E16",
        "Stable-reign fast path: phase-1 skip, leader leases, linearizable reads",
        &[
            "scenario",
            "tier",
            "mix r/w",
            "reads/s",
            "writes/s",
            "rd p50 us",
            "rd p99 us",
            "verdict",
        ],
    );
    let n = 5;
    let clients = if quick { 2 } else { 4 };
    let duration = StdDuration::from_millis(if quick { 1500 } else { 4000 });

    // Mix rows: every tier at 95/5, the linearizable tiers also at 50/50.
    let mixes: [(ReadTier, u32); 5] = [
        (ReadTier::Lease, 95),
        (ReadTier::ReadIndex, 95),
        (ReadTier::Stale, 95),
        (ReadTier::Lease, 50),
        (ReadTier::ReadIndex, 50),
    ];
    let mut reads_per_sec_at_95: std::collections::BTreeMap<&str, f64> =
        std::collections::BTreeMap::new();
    for (tier, read_pct) in mixes {
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, SvcConfig::new(n, clients));
        let (report, acked, reads) = mixed_loop(
            &mut cl,
            MixedLoopOptions {
                duration,
                op_deadline: StdDuration::from_secs(8),
                read_pct,
                tier,
                ..MixedLoopOptions::default()
            },
        );
        let finals = cluster.shutdown();
        let refs: Vec<&SvcReplica> = finals.iter().collect();
        let tier_name = match tier {
            ReadTier::Lease => "lease",
            ReadTier::ReadIndex => "read-index",
            ReadTier::Stale => "stale",
        };
        let verdict = match (
            check_read_linearizability(&reads),
            check_consistency(&refs, &acked),
        ) {
            (Ok(()), Ok(())) => format!(
                "{} reads within contract, {} writes consistent",
                report.reads, report.writes
            ),
            (Err(e), _) => format!("FAIL: read contract violated: {e}"),
            (_, Err(e)) => format!("FAIL: INCONSISTENT: {e}"),
        };
        if read_pct == 95 {
            reads_per_sec_at_95.insert(tier_name, report.reads_per_sec());
        }
        table.push_row(vec![
            "mixed load".to_string(),
            tier_name.to_string(),
            format!("{read_pct}/{}", 100 - read_pct),
            format!("{:.0}", report.reads_per_sec()),
            format!("{:.0}", report.writes_per_sec()),
            report.read_latency.percentile(50.0).to_string(),
            report.read_latency.percentile(99.0).to_string(),
            verdict,
        ]);
    }

    // Summary row: the lease's whole point is that reads stop paying for
    // coordination — at 95/5 it must beat the probe-per-batch read-index
    // path by at least 3×.
    {
        let lease = reads_per_sec_at_95.get("lease").copied().unwrap_or(0.0);
        let ri = reads_per_sec_at_95
            .get("read-index")
            .copied()
            .unwrap_or(0.0);
        let ratio = if ri > 0.0 { lease / ri } else { f64::INFINITY };
        let verdict = if ratio >= 3.0 {
            format!("PASS: lease reads {ratio:.1}x read-index reads at 95/5")
        } else {
            format!("FAIL: lease reads only {ratio:.1}x read-index reads (need >= 3x)")
        };
        table.push_row(vec![
            "lease vs read-index".to_string(),
            "-".to_string(),
            "95/5".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            verdict,
        ]);
    }

    // Crash row: leader dies while its lease may still be live.
    {
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, SvcConfig::new(n, clients));
        let (report, acked, reads, crashed) = mixed_loop_with_leader_crash(
            &cluster,
            &mut cl,
            MixedLoopOptions {
                duration: StdDuration::from_secs(if quick { 3 } else { 5 }),
                op_deadline: StdDuration::from_secs(10),
                read_pct: 95,
                tier: ReadTier::Lease,
                ..MixedLoopOptions::default()
            },
            StdDuration::from_millis(if quick { 900 } else { 1500 }),
        );
        let converged = irs_svc::loadgen::await_survivor_convergence(
            &cluster,
            crashed,
            StdDuration::from_secs(30),
        );
        let finals = cluster.shutdown();
        let survivors: Vec<&SvcReplica> = finals.iter().filter(|r| r.id() != crashed).collect();
        let verdict = if !converged {
            "FAIL: survivors never converged".to_string()
        } else {
            match (
                check_read_linearizability(&reads),
                check_consistency(&survivors, &acked),
            ) {
                (Ok(()), Ok(())) => format!(
                    "PASS: leader {crashed} crashed mid-lease; {} reads stayed linearizable, \
                     {} writes consistent",
                    report.reads, report.writes
                ),
                (Err(e), _) => format!("FAIL: read went non-linearizable: {e}"),
                (_, Err(e)) => format!("FAIL: INCONSISTENT: {e}"),
            }
        };
        table.push_row(vec![
            "leader crash mid-lease".to_string(),
            "lease".to_string(),
            "95/5".to_string(),
            format!("{:.0}", report.reads_per_sec()),
            format!("{:.0}", report.writes_per_sec()),
            report.read_latency.percentile(50.0).to_string(),
            report.read_latency.percentile(99.0).to_string(),
            verdict,
        ]);
    }

    // Skip rows: write-only load, phase-1 skip on vs off, counter deltas.
    let mut skip_stats: Vec<(bool, f64, u64, u64, u64)> = Vec::new();
    for skip in [true, false] {
        let config = SvcConfig::new(n, clients).with_phase1_skip(skip);
        let (cluster, mut cl) = SvcCluster::in_memory(n, clients, config);
        let (report, acked) = closed_loop(
            &mut cl,
            ClosedLoopOptions {
                duration,
                op_deadline: StdDuration::from_secs(8),
                ..ClosedLoopOptions::default()
            },
        );
        // Read the consensus counters while the cluster is live, summed
        // across replicas (only the leader's are nonzero in a calm run).
        let (mut skips, mut prepares, mut slots) = (0, 0, 0);
        for p in (0..n as u32).map(irs_types::ProcessId::new) {
            let snap = cluster.snapshot(p);
            skips += snap.gauge("phase1_skips").unwrap_or(0);
            prepares += snap.gauge("reign_prepares").unwrap_or(0);
            slots += snap.gauge("slots_driven").unwrap_or(0);
        }
        let finals = cluster.shutdown();
        let refs: Vec<&SvcReplica> = finals.iter().collect();
        let verdict = match check_consistency(&refs, &acked) {
            Ok(()) => {
                format!("{slots} slots driven, {prepares} reign prepares, {skips} phase-1 skips")
            }
            Err(e) => format!("FAIL: INCONSISTENT: {e}"),
        };
        skip_stats.push((skip, report.ops_per_sec(), skips, prepares, slots));
        table.push_row(vec![
            format!("write-only, skip {}", if skip { "on" } else { "off" }),
            "-".to_string(),
            "0/100".to_string(),
            "-".to_string(),
            format!("{:.0}", report.ops_per_sec()),
            "-".to_string(),
            "-".to_string(),
            verdict,
        ]);
    }

    // Summary row: with the skip on, nearly every driven slot must have
    // skipped its per-slot phase 1; the baseline skips none.
    {
        let on = skip_stats.iter().find(|s| s.0).expect("skip-on row ran");
        let off = skip_stats.iter().find(|s| !s.0).expect("skip-off row ran");
        let saved = on.2; // each skip = one Prepare broadcast + its promises saved
        let verdict = if on.2 > 0 && off.2 == 0 && on.2 >= on.4 / 2 {
            format!(
                "PASS: skip saved {saved} per-slot prepare broadcasts over {} slots \
                 (baseline paid phase 1 on every slot, {} slots)",
                on.4, off.4
            )
        } else {
            format!(
                "FAIL: expected most slots to skip (on: {}/{} skipped, off: {}/{})",
                on.2, on.4, off.2, off.4
            )
        };
        table.push_row(vec![
            "phase-1 frame delta".to_string(),
            "-".to_string(),
            "0/100".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            verdict,
        ]);
    }

    table
}

/// One experiment entry point: takes the `quick` flag, returns its table.
pub type ExperimentFn = fn(bool) -> Table;

/// Every experiment, in order, as `(id, function)` pairs.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("e1", e1_election_under_a_prime),
        ("e2", e2_election_under_a),
        ("e3", e3_crash_suspicion_growth),
        ("e4", e4_suspicion_stabilisation),
        ("e5", e5_bounded_variables),
        ("e6", e6_assumption_matrix),
        ("e7", e7_fg_extension),
        ("e8", e8_consensus),
        ("e9", e9_message_cost),
        ("e10", e10_sensitivity),
        ("e11", e11_deployment),
        ("e12", e12_kv_service),
        ("e13", e13_durability),
        ("e14", e14_observability),
        ("e15", e15_live_telemetry),
        ("e16", e16_stable_reign_fast_path),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_experiment_once() {
        let ids: Vec<&str> = all().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 16);
        let unique: std::collections::BTreeSet<&&str> = ids.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn consensus_runner_decides_quickly_under_a_prime() {
        let outcome = run_consensus_once(4, 1, None, false, 150_000, 1);
        assert!(outcome.all_decided);
        assert!(outcome.messages > 0);
    }

    // The table-producing experiments are exercised end-to-end (in quick
    // mode) by the workspace-level integration tests and the benches; here we
    // only run the cheapest one to keep the unit test suite fast.
    #[test]
    fn e9_quick_produces_rows_for_both_variants() {
        let table = e9_message_cost(true);
        assert_eq!(table.rows.len(), 4);
        assert!(table.to_text().contains("fig3"));
        assert!(table.to_csv().lines().count() > 3);
    }
}
