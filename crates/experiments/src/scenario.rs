//! Scenario description and the generic scenario runner.
//!
//! A [`Scenario`] names everything a reproducible run needs: the system size,
//! the algorithm under test, the behavioural assumption (adversary), the
//! background-delay regime, the crash schedule, the horizon and the seeds.
//! [`Scenario::run`] executes it under every seed and returns one
//! [`RunOutcome`] per seed; the experiment modules turn those into table
//! rows.

use crate::outcome::RunOutcome;
use irs_baselines::{OmegaMessagePattern, OmegaTSource, OmegaTimeoutAll};
use irs_omega::{OmegaConfig, OmegaProcess, Variant};
use irs_sim::adversary::basic::{EventuallySynchronous, RandomDelay};
use irs_sim::adversary::{presets, Adversary, DelayDist};
use irs_sim::{CrashPlan, SimConfig, Simulation};
use irs_types::{
    Duration, GrowthFn, Introspect, ProcessId, Protocol, RoundTagged, SystemConfig, Time,
};

/// The delay regime of all assumption-unconstrained messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Background {
    /// Uniform delays in `[1, 60]` ticks — bounded, so even timeout-chasing
    /// algorithms can eventually adapt to it.
    Static,
    /// Delays whose spread grows without bound over simulated time — only
    /// assumption-protected messages remain usable forever.
    Growing,
}

impl Background {
    /// The delay distribution this regime denotes.
    pub fn dist(self) -> DelayDist {
        match self {
            Background::Static => {
                DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(60))
            }
            Background::Growing => {
                DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(40)).with_growth(
                    GrowthFn::Linear {
                        per_round: 1,
                        divisor: 4,
                    },
                    Duration::from_ticks(100),
                )
            }
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Background::Static => "static",
            Background::Growing => "growing",
        }
    }
}

/// The behavioural assumption (adversary) a scenario runs under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Assumption {
    /// Every link of every process is timely after a global stabilisation
    /// time — the strongest model, satisfied by all algorithms.
    EventuallySynchronous,
    /// Eventual t-source: a fixed set of `t` output links of the centre is
    /// eventually `Δ`-timely.
    TSource,
    /// Eventual t-moving source: as above, but the set may change per round.
    MovingSource,
    /// Message pattern: the centre's round messages are winning at a fixed
    /// set of `t` processes; no timeliness whatsoever.
    MessagePattern,
    /// The combined assumption: fixed set, each link timely or winning.
    Combined,
    /// The paper's `A′`: rotating star, every round.
    RotatingStar,
    /// The paper's `A`: intermittent rotating star with gap bound `d`.
    Intermittent {
        /// The gap bound `D`.
        d: u64,
    },
    /// The paper's `A_{f,g}`: growing gaps and growing timeliness slack.
    FgStar {
        /// The base gap bound `D`.
        d: u64,
        /// The gap-slack function `f`.
        f: GrowthFn,
        /// The timeliness-slack function `g`.
        g: GrowthFn,
    },
    /// No assumption at all (negative control).
    PureAsync,
}

impl Assumption {
    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            Assumption::EventuallySynchronous => "evt-synchronous".into(),
            Assumption::TSource => "evt-t-source".into(),
            Assumption::MovingSource => "evt-moving-source".into(),
            Assumption::MessagePattern => "message-pattern".into(),
            Assumption::Combined => "combined".into(),
            Assumption::RotatingStar => "rotating-star(A')".into(),
            Assumption::Intermittent { d } => format!("intermittent(A,D={d})"),
            Assumption::FgStar { d, .. } => format!("fg-star(D={d})"),
            Assumption::PureAsync => "pure-async".into(),
        }
    }
}

/// The algorithm a scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Figure 1 of the paper.
    Fig1,
    /// Figure 2 of the paper.
    Fig2,
    /// Figure 3 of the paper (bounded variables).
    Fig3,
    /// The Section 7 `A_{f,g}` variant.
    Fg {
        /// The gap-slack function `f` known to the processes.
        f: GrowthFn,
        /// The timer-slack function `g` known to the processes.
        g: GrowthFn,
    },
    /// Baseline: timeout-based Ω needing all-links timeliness.
    TimeoutAll,
    /// Baseline: accusation-counter Ω for the eventual t-source.
    TSourceCounter,
    /// Baseline: time-free message-pattern Ω (MMR DSN'03).
    MessagePatternMMR,
}

impl Algorithm {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Fig1 => "fig1",
            Algorithm::Fig2 => "fig2",
            Algorithm::Fig3 => "fig3",
            Algorithm::Fg { .. } => "fig3+fg",
            Algorithm::TimeoutAll => "timeout-all",
            Algorithm::TSourceCounter => "tsource-counter",
            Algorithm::MessagePatternMMR => "mmr-pattern",
        }
    }
}

/// One fully specified experiment cell.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Free-form name used in logs.
    pub name: String,
    /// The system `(n, t)`.
    pub system: SystemConfig,
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// The behavioural assumption (adversary).
    pub assumption: Assumption,
    /// Background-delay regime for unconstrained messages.
    pub background: Background,
    /// The star centre of the assumption.
    pub center: ProcessId,
    /// The timeliness bound `Δ`.
    pub delta: Duration,
    /// Crash schedule: `(process index, crash time in ticks)`.
    pub crashes: Vec<(u32, u64)>,
    /// Simulation horizon in ticks.
    pub horizon: u64,
    /// Early-stop window: stop once the agreement has been stable for this
    /// many ticks (0 = always run to the horizon).
    pub quiet: u64,
    /// Seeds; one run per seed.
    pub seeds: Vec<u64>,
    /// Delta-encoded gossip for the Ω algorithms: `Some(refresh_every)`
    /// enables it (see `OmegaConfig::with_delta_gossip`), `None` runs the
    /// paper's full-vector gossip. Ignored by the baseline algorithms.
    ///
    /// **Default:** `Some(8)` for systems with `n ≥ 128` (the large-n
    /// configuration, pinned trace-equivalent in leader history by
    /// `crates/core/tests/delta_gossip.rs`), `None` below that — so the
    /// paper-scale scenarios and the pinned `trace_digest` for `n ≤ 64`
    /// are untouched. Force the full-vector path at any size with
    /// [`Scenario::with_full_gossip`].
    pub delta_gossip: Option<u64>,
}

impl Scenario {
    /// System size at and above which delta-encoded gossip becomes the
    /// default (see [`Scenario::delta_gossip`]).
    pub const DELTA_GOSSIP_DEFAULT_N: usize = 128;
    /// The default full-refresh interval of the large-n delta-gossip
    /// configuration.
    pub const DELTA_GOSSIP_DEFAULT_REFRESH: u64 = 8;

    /// Creates a scenario with default tuning: `Δ = 8` ticks, centre = the
    /// highest-id process, static background, no crashes, horizon 250 000
    /// ticks, early stop after 20 000 quiet ticks, seeds `1..=3`, and —
    /// for `n ≥ 128` — delta-encoded gossip with a full refresh every 8
    /// broadcasts.
    ///
    /// # Panics
    ///
    /// Panics if `(n, t)` is not a valid system.
    pub fn new(
        name: &str,
        n: usize,
        t: usize,
        algorithm: Algorithm,
        assumption: Assumption,
    ) -> Self {
        let system = SystemConfig::new(n, t).expect("invalid system parameters");
        Scenario {
            name: name.to_string(),
            system,
            algorithm,
            assumption,
            background: Background::Static,
            center: ProcessId::new(n as u32 - 1),
            delta: Duration::from_ticks(8),
            crashes: Vec::new(),
            horizon: 250_000,
            quiet: 20_000,
            seeds: vec![1, 2, 3],
            delta_gossip: (n >= Self::DELTA_GOSSIP_DEFAULT_N)
                .then_some(Self::DELTA_GOSSIP_DEFAULT_REFRESH),
        }
    }

    /// Sets the background-delay regime.
    #[must_use]
    pub fn with_background(mut self, background: Background) -> Self {
        self.background = background;
        self
    }

    /// Sets the star centre.
    #[must_use]
    pub fn with_center(mut self, center: ProcessId) -> Self {
        self.center = center;
        self
    }

    /// Adds a crash.
    #[must_use]
    pub fn with_crash(mut self, process: u32, at_ticks: u64) -> Self {
        self.crashes.push((process, at_ticks));
        self
    }

    /// Sets the horizon and early-stop window.
    #[must_use]
    pub fn with_horizon(mut self, horizon: u64, quiet: u64) -> Self {
        self.horizon = horizon;
        self.quiet = quiet;
        self
    }

    /// Sets the seeds.
    #[must_use]
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Enables delta-encoded gossip (full refresh every `refresh_every`
    /// broadcasts) for the Ω algorithm variants.
    #[must_use]
    pub fn with_delta_gossip(mut self, refresh_every: u64) -> Self {
        self.delta_gossip = Some(refresh_every);
        self
    }

    /// Forces the paper's full-vector gossip at any system size, overriding
    /// the `n ≥ 128` delta-gossip default.
    #[must_use]
    pub fn with_full_gossip(mut self) -> Self {
        self.delta_gossip = None;
        self
    }

    /// Runs the scenario once per seed, concurrently.
    ///
    /// Each `(scenario, seed)` simulation is fully independent (its own
    /// processes, adversary and RNG), so the seeds are fanned out over the
    /// machine's cores; the outcomes come back in seed order, identical to
    /// [`Scenario::run_serial`] — the determinism regression test asserts
    /// this equivalence.
    pub fn run(&self) -> Vec<RunOutcome> {
        ordered_parallel(self.seeds.len(), |i| self.run_seed(self.seeds[i]))
    }

    /// Runs the scenario once per seed on the calling thread, in seed order.
    pub fn run_serial(&self) -> Vec<RunOutcome> {
        self.seeds.iter().map(|&seed| self.run_seed(seed)).collect()
    }

    /// Runs the scenario under one seed.
    pub fn run_seed(&self, seed: u64) -> RunOutcome {
        match self.algorithm {
            Algorithm::Fig1 => self.run_omega(seed, Variant::Fig1),
            Algorithm::Fig2 => self.run_omega(seed, Variant::Fig2),
            Algorithm::Fig3 => self.run_omega(seed, Variant::Fig3),
            Algorithm::Fg { f, g } => self.run_omega(seed, Variant::Fg { f, g }),
            Algorithm::TimeoutAll => self.run_protocol(seed, OmegaTimeoutAll::new),
            Algorithm::TSourceCounter => self.run_protocol(seed, OmegaTSource::new),
            Algorithm::MessagePatternMMR => self.run_protocol(seed, OmegaMessagePattern::new),
        }
    }

    fn run_omega(&self, seed: u64, variant: Variant) -> RunOutcome {
        let delta = self.delta_gossip;
        self.run_protocol(seed, move |id, sys| {
            let mut cfg = OmegaConfig::new(sys, variant);
            if let Some(refresh_every) = delta {
                cfg = cfg.with_delta_gossip(refresh_every);
            }
            OmegaProcess::new(id, cfg)
        })
    }

    /// Builds the protocol instances and dispatches on the assumption to
    /// construct the matching adversary.
    fn run_protocol<P, F>(&self, seed: u64, make: F) -> RunOutcome
    where
        P: Protocol + Introspect,
        P::Msg: RoundTagged,
        F: Fn(ProcessId, SystemConfig) -> P,
    {
        let processes: Vec<P> = self
            .system
            .processes()
            .map(|id| make(id, self.system))
            .collect();
        let dist = self.background.dist();
        let sys = self.system;
        let center = self.center;
        let delta = self.delta;
        match self.assumption {
            Assumption::EventuallySynchronous => self.finish(
                seed,
                processes,
                EventuallySynchronous::new(Time::from_ticks(self.horizon / 20), delta, dist),
            ),
            Assumption::TSource => self.finish(
                seed,
                processes,
                presets::eventual_t_source(sys, center, delta, dist, seed),
            ),
            Assumption::MovingSource => self.finish(
                seed,
                processes,
                presets::eventual_t_moving_source(sys, center, delta, dist, seed),
            ),
            Assumption::MessagePattern => self.finish(
                seed,
                processes,
                presets::message_pattern(sys, center, dist, seed),
            ),
            Assumption::Combined => self.finish(
                seed,
                processes,
                presets::combined_fixed(sys, center, delta, dist, seed),
            ),
            Assumption::RotatingStar => self.finish(
                seed,
                processes,
                presets::rotating_star_a_prime(sys, center, delta, dist, seed),
            ),
            Assumption::Intermittent { d } => self.finish(
                seed,
                processes,
                presets::intermittent_rotating_star(sys, center, delta, d, dist, seed),
            ),
            Assumption::FgStar { d, f, g } => self.finish(
                seed,
                processes,
                presets::fg_rotating_star(sys, center, delta, d, f, g, dist, seed),
            ),
            Assumption::PureAsync => self.finish(seed, processes, RandomDelay::new(dist)),
        }
    }

    fn finish<P, A>(&self, seed: u64, processes: Vec<P>, adversary: A) -> RunOutcome
    where
        P: Protocol + Introspect,
        P::Msg: RoundTagged,
        A: Adversary<P::Msg>,
    {
        let mut crash_plan = CrashPlan::new();
        for (pid, at) in &self.crashes {
            crash_plan = crash_plan.crash(ProcessId::new(*pid), Time::from_ticks(*at));
        }
        let last_crash = self.crashes.iter().map(|(_, at)| *at).max().unwrap_or(0);
        let mut sim = Simulation::new(
            SimConfig::new(seed, Time::from_ticks(self.horizon)),
            processes,
            adversary,
            crash_plan,
        );
        let report = if self.quiet == 0 {
            sim.run()
        } else {
            // Never let the early stop fire before all scheduled crashes
            // have been injected.
            sim.start();
            while sim.now() < Time::from_ticks(last_crash) && sim.step() {}
            sim.run_until_stable_for(Duration::from_ticks(self.quiet))
        };
        RunOutcome::from_report(&report, Some(self.center))
    }
}

/// Runs a batch of scenarios, fanning *every* `(scenario, seed)` pair out
/// over the machine's cores at once (better load balancing than
/// per-scenario parallelism when cells have different sizes). Returns one
/// `Vec<RunOutcome>` per scenario, in input order, with outcomes in seed
/// order — byte-identical to running each scenario serially.
pub fn run_batch(scenarios: &[Scenario]) -> Vec<Vec<RunOutcome>> {
    let jobs: Vec<(usize, u64)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, s)| s.seeds.iter().map(move |&seed| (i, seed)))
        .collect();
    let outcomes = ordered_parallel(jobs.len(), |j| {
        let (i, seed) = jobs[j];
        scenarios[i].run_seed(seed)
    });
    let mut grouped: Vec<Vec<RunOutcome>> = scenarios
        .iter()
        .map(|s| Vec::with_capacity(s.seeds.len()))
        .collect();
    for ((i, _), outcome) in jobs.into_iter().zip(outcomes) {
        grouped[i].push(outcome);
    }
    grouped
}

/// Evaluates `f(0..jobs)` on a bounded pool of scoped threads and returns
/// the results in job order. Work is handed out through an atomic counter,
/// so long jobs do not starve the pool.
fn ordered_parallel<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<T>>> =
        (0..jobs).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let outcome = f(i);
                *results[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker finished every claimed job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Aggregate;

    /// A sweep of many more jobs than cores must never spawn one thread per
    /// job: the pool is capped at the machine's available parallelism, and
    /// work is handed out through the shared counter. Tracked via the peak
    /// number of concurrently running jobs over a 1000-job batch.
    #[test]
    fn ordered_parallel_bounds_worker_count() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let results = ordered_parallel(1000, |i| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            active.fetch_sub(1, Ordering::SeqCst);
            i * 2
        });
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert!(
            peak.load(Ordering::SeqCst) <= cores,
            "peak concurrency {} exceeds available parallelism {}",
            peak.load(Ordering::SeqCst),
            cores
        );
        // Results come back complete and in job order.
        assert_eq!(results.len(), 1000);
        assert!(results.iter().enumerate().all(|(i, &r)| r == i * 2));
    }

    #[test]
    fn delta_gossip_builder_sets_flag() {
        let s = Scenario::new("d", 4, 1, Algorithm::Fig3, Assumption::RotatingStar)
            .with_delta_gossip(8);
        assert_eq!(s.delta_gossip, Some(8));
        // A delta-gossip scenario still stabilises end-to-end.
        let s = s.with_horizon(120_000, 15_000).with_seeds(&[1]);
        assert!(s.run()[0].stabilized);
    }

    /// Delta gossip is the default exactly from `n = 128` up; below that the
    /// paper's full vectors stay the default (so the pinned `trace_digest`
    /// for `n ≤ 64` is untouched), and `with_full_gossip` opts back out at
    /// any size.
    #[test]
    fn delta_gossip_defaults_on_for_large_n_only() {
        for (n, expected) in [
            (4, None),
            (64, None),
            (127, None),
            (128, Some(8)),
            (256, Some(8)),
        ] {
            let s = Scenario::new(
                "d",
                n,
                (n - 1) / 2,
                Algorithm::Fig3,
                Assumption::RotatingStar,
            );
            assert_eq!(s.delta_gossip, expected, "n = {n}");
        }
        let forced = Scenario::new("d", 128, 63, Algorithm::Fig3, Assumption::RotatingStar)
            .with_full_gossip();
        assert_eq!(forced.delta_gossip, None);
    }

    #[test]
    fn scenario_builders_compose() {
        let s = Scenario::new("x", 5, 2, Algorithm::Fig3, Assumption::RotatingStar)
            .with_background(Background::Growing)
            .with_center(ProcessId::new(1))
            .with_crash(0, 10_000)
            .with_horizon(50_000, 5_000)
            .with_seeds(&[7]);
        assert_eq!(s.system.n(), 5);
        assert_eq!(s.center, ProcessId::new(1));
        assert_eq!(s.crashes, vec![(0, 10_000)]);
        assert_eq!(s.horizon, 50_000);
        assert_eq!(s.seeds, vec![7]);
        assert_eq!(s.background.label(), "growing");
    }

    #[test]
    fn labels_are_distinct() {
        let algorithms = [
            Algorithm::Fig1,
            Algorithm::Fig2,
            Algorithm::Fig3,
            Algorithm::TimeoutAll,
            Algorithm::TSourceCounter,
            Algorithm::MessagePatternMMR,
        ];
        let labels: std::collections::BTreeSet<&str> =
            algorithms.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), algorithms.len());
        assert!(Assumption::Intermittent { d: 4 }.label().contains("D=4"));
    }

    #[test]
    fn fig3_scenario_stabilises_under_a_prime() {
        let s = Scenario::new("smoke", 4, 1, Algorithm::Fig3, Assumption::RotatingStar)
            .with_horizon(150_000, 15_000)
            .with_seeds(&[1, 2]);
        let outcomes = s.run();
        let agg = Aggregate::from_outcomes(&outcomes);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.stabilized, 2, "outcomes: {outcomes:?}");
    }

    #[test]
    fn baseline_scenario_runs_end_to_end() {
        let s = Scenario::new(
            "smoke-baseline",
            4,
            1,
            Algorithm::TimeoutAll,
            Assumption::EventuallySynchronous,
        )
        .with_horizon(100_000, 10_000)
        .with_seeds(&[3]);
        let outcomes = s.run();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].stabilized);
    }

    #[test]
    fn crash_is_injected_before_early_stop() {
        let s = Scenario::new("crash", 4, 1, Algorithm::Fig3, Assumption::RotatingStar)
            .with_crash(0, 30_000)
            .with_horizon(200_000, 15_000)
            .with_seeds(&[5]);
        let o = &s.run()[0];
        assert_eq!(o.crashed, 1);
        assert!(o.stabilized);
        assert_ne!(o.leader, Some(ProcessId::new(0)));
    }
}
