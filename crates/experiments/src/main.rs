//! Command-line entry point: regenerate the tables of EXPERIMENTS.md.
//!
//! ```text
//! irs-experiments list              # list experiment ids
//! irs-experiments all [--quick]     # run everything
//! irs-experiments e6 e8 [--csv]     # run selected experiments
//! irs-experiments e2 --quick --n 128   # e2 at an explicit system size
//! ```

use irs_experiments::suite;
use std::io::Write;

fn main() {
    // E13 kill -9 row: re-exec'd copies of this binary run as durable
    // replica children, selected by environment before any arg parsing.
    if let Ok(id) = std::env::var("IRS_E13_CHILD") {
        let base = std::env::var("IRS_E13_DIR").expect("IRS_E13_DIR set alongside IRS_E13_CHILD");
        suite::e13_child_main(
            id.parse().expect("IRS_E13_CHILD is a replica id"),
            std::path::Path::new(&base),
        );
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    // `--n 128` / `--n=128`: system-size override for the experiments that
    // support it (currently e2, the large-n smoke).
    let n_override: Option<usize> = args.iter().enumerate().find_map(|(i, a)| {
        if let Some(v) = a.strip_prefix("--n=") {
            v.parse().ok()
        } else if a == "--n" {
            args.get(i + 1).and_then(|v| v.parse().ok())
        } else {
            None
        }
    });
    if n_override.is_some_and(|n| n < 2) {
        eprintln!("--n must be at least 2 (got {})", n_override.unwrap());
        std::process::exit(2);
    }
    let selections: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let n_value = *i > 0 && args[*i - 1] == "--n" && a.parse::<usize>().is_ok();
            !(a.starts_with("--") || n_value)
        })
        .map(|(_, a)| a.to_lowercase())
        .collect();

    let catalogue = suite::all();

    if selections.is_empty() || selections.iter().any(|s| s == "list") {
        eprintln!("usage: irs-experiments [list | all | e1 .. e16]... [--quick] [--csv]");
        eprintln!("available experiments:");
        for (id, _) in &catalogue {
            eprintln!("  {id}");
        }
        if selections.is_empty() {
            std::process::exit(2);
        }
        return;
    }

    let run_all = selections.iter().any(|s| s == "all");
    let mut ran_any = false;
    for (id, run) in catalogue {
        if run_all || selections.iter().any(|s| s == id) {
            ran_any = true;
            let started = std::time::Instant::now();
            let table = if id == "e2" && n_override.is_some() {
                suite::e2_election_under_a_sized(quick, n_override)
            } else {
                run(quick)
            };
            let elapsed = started.elapsed();
            let mut stdout = std::io::stdout().lock();
            if csv {
                let _ = writeln!(stdout, "# {} — {}", table.id, table.title);
                let _ = write!(stdout, "{}", table.to_csv());
            } else {
                let _ = write!(stdout, "{}", table.to_text());
            }
            let _ = writeln!(
                stdout,
                "({} finished in {:.1}s{})\n",
                id,
                elapsed.as_secs_f64(),
                if quick { ", quick mode" } else { "" }
            );
        }
    }
    if !ran_any {
        eprintln!("no experiment matched {selections:?}; try `irs-experiments list`");
        std::process::exit(2);
    }
}
