//! Determinism regression tests.
//!
//! The whole experiment methodology rests on two properties:
//!
//! 1. a fixed `(seed, config)` pair replays the *same* run, byte for byte
//!    (same `TraceCounters`, same leader-agreement history), and
//! 2. the parallel sweep paths (`Scenario::run`, `run_batch`) produce
//!    exactly what the serial path produces, in the same order.
//!
//! These tests pin both, so an engine refactor that silently perturbs event
//! order (or a sweep refactor that races) fails loudly here.

use irs_experiments::{run_batch, Algorithm, Assumption, Background, Scenario};
use irs_omega::OmegaProcess;
use irs_sim::adversary::presets;
use irs_sim::{CrashPlan, SimConfig, SimReport, Simulation};
use irs_types::{Duration, ProcessId, SystemConfig, Time};

fn run_preset(seed: u64) -> SimReport {
    let system = SystemConfig::new(5, 2).unwrap();
    let center = ProcessId::new(4);
    let adversary = presets::intermittent_rotating_star(
        system,
        center,
        Duration::from_ticks(8),
        4,
        irs_sim::adversary::DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(60)),
        seed,
    );
    let processes: Vec<OmegaProcess> = system
        .processes()
        .map(|id| OmegaProcess::fig3(id, system))
        .collect();
    let mut sim = Simulation::new(
        SimConfig::new(seed, Time::from_ticks(120_000)),
        processes,
        adversary,
        CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(20_000)),
    );
    sim.run()
}

/// One adversary preset, run twice with the same `(seed, config)`: the
/// counters and the full leader history must be identical.
#[test]
fn same_seed_replays_identical_counters_and_history() {
    for seed in [1u64, 7, 42] {
        let a = run_preset(seed);
        let b = run_preset(seed);
        assert_eq!(a.counters, b.counters, "counters diverged for seed {seed}");
        assert_eq!(
            a.leader_history, b.leader_history,
            "leader history diverged for seed {seed}"
        );
        assert_eq!(a.stabilization, b.stabilization);
        assert_eq!(a.final_time, b.final_time);
    }
}

/// Different seeds must actually produce different runs (otherwise the test
/// above is vacuous).
#[test]
fn different_seeds_differ() {
    let a = run_preset(1);
    let b = run_preset(2);
    assert_ne!(a.counters, b.counters);
}

fn sweep_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "det-a",
            5,
            2,
            Algorithm::Fig3,
            Assumption::Intermittent { d: 4 },
        )
        .with_background(Background::Growing)
        .with_crash(1, 25_000)
        .with_horizon(80_000, 0)
        .with_seeds(&[1, 2, 3, 4]),
        Scenario::new("det-b", 4, 1, Algorithm::Fig1, Assumption::RotatingStar)
            .with_horizon(60_000, 10_000)
            .with_seeds(&[5, 6]),
        Scenario::new(
            "det-c",
            4,
            1,
            Algorithm::TimeoutAll,
            Assumption::EventuallySynchronous,
        )
        .with_horizon(60_000, 10_000)
        .with_seeds(&[7]),
    ]
}

/// The parallel per-seed path returns exactly the serial results, in seed
/// order.
#[test]
fn parallel_run_matches_serial_run() {
    for scenario in sweep_scenarios() {
        assert_eq!(
            scenario.run(),
            scenario.run_serial(),
            "parallel/serial divergence in {}",
            scenario.name
        );
    }
}

/// The batch fan-out over whole scenario sets also matches the serial path,
/// scenario by scenario and seed by seed.
#[test]
fn run_batch_matches_serial_runs() {
    let scenarios = sweep_scenarios();
    let batched = run_batch(&scenarios);
    assert_eq!(batched.len(), scenarios.len());
    for (scenario, outcomes) in scenarios.iter().zip(batched) {
        assert_eq!(
            outcomes,
            scenario.run_serial(),
            "batch divergence in {}",
            scenario.name
        );
    }
}
