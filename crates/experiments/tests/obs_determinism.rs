//! Flight-recorder determinism (PR 8, satellite 3): the simulator stamps
//! trace events with its virtual clock and never reads wall time, so two
//! runs under the same `(seed, config)` must record byte-identical event
//! streams — the property that makes a recorded trace reproducible
//! evidence rather than a one-off observation.

use irs_obs::{FlightRecorder, TraceEvent};
use irs_omega::OmegaProcess;
use irs_sim::adversary::{presets, DelayDist};
use irs_sim::{CrashPlan, SimConfig, Simulation};
use irs_types::{Duration, ProcessId, SystemConfig, Time};
use std::sync::Arc;

/// One Fig 3 run under assumption `A'` with the initial leader crashing
/// mid-run (so the recorder is guaranteed leader-change events), returning
/// the recorded stream.
fn record_run(seed: u64) -> Vec<TraceEvent> {
    let n = 5;
    let system = SystemConfig::new(n, 2).expect("valid system");
    let processes: Vec<OmegaProcess> = system
        .processes()
        .map(|id| OmegaProcess::fig3(id, system))
        .collect();
    let adversary = presets::rotating_star_a_prime(
        system,
        ProcessId::new(2),
        Duration::from_ticks(8),
        DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(60)),
        seed,
    );
    let recorder = Arc::new(FlightRecorder::new(n, 256));
    let mut sim = Simulation::new(
        SimConfig::new(seed, Time::from_ticks(120_000)),
        processes,
        adversary,
        CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(30_000)),
    );
    sim.attach_recorder(Arc::clone(&recorder));
    sim.run();
    recorder.dump()
}

#[test]
fn identical_seed_and_config_record_identical_event_streams() {
    let first = record_run(11);
    let second = record_run(11);
    assert!(
        !first.is_empty(),
        "crashing the initial leader must record leader-change events"
    );
    assert_eq!(
        first, second,
        "same (seed, config) must replay the exact event stream"
    );
}

#[test]
fn different_seeds_record_different_streams() {
    let a = record_run(11);
    let b = record_run(12);
    assert_ne!(
        a, b,
        "different delay schedules should move re-election timing"
    );
}
