//! E3 — crash of the elected leader: suspicion growth and re-election.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e3_crash_suspicion_growth(true));
    let mut group = c.benchmark_group("e3_crash_suspicion_growth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fig3_reelection_after_crash", |b| {
        b.iter(|| {
            let scenario =
                Scenario::new("bench-e3", 5, 2, Algorithm::Fig3, Assumption::RotatingStar)
                    .with_crash(0, 30_000)
                    .with_horizon(160_000, 15_000)
                    .with_seeds(&[2]);
            let outcome = &scenario.run()[0];
            (outcome.stabilized, outcome.max_susp_level)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
