//! E5 — bounded variables: Figure 3 vs Figures 1/2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e5_bounded_variables(true));
    let mut group = c.benchmark_group("e5_bounded_variables");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(4));
    for (label, algorithm) in [("fig1", Algorithm::Fig1), ("fig3", Algorithm::Fig3)] {
        group.bench_with_input(
            BenchmarkId::new("crashed_process_run", label),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    let scenario =
                        Scenario::new("bench-e5", 5, 2, algorithm, Assumption::RotatingStar)
                            .with_crash(1, 10_000)
                            .with_horizon(100_000, 0)
                            .with_seeds(&[1]);
                    let outcome = &scenario.run()[0];
                    (
                        outcome.max_susp_level,
                        outcome.max_timer_ticks,
                        outcome.theorem4_holds,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
