//! E9 — communication cost per round as a function of n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e9_message_cost(true));
    let mut group = c.benchmark_group("e9_message_cost");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(4));
    for (n, t) in [(4usize, 1usize), (8, 3)] {
        group.bench_with_input(
            BenchmarkId::new("fig3_fixed_horizon", n),
            &(n, t),
            |b, &(n, t)| {
                b.iter(|| {
                    let scenario =
                        Scenario::new("bench-e9", n, t, Algorithm::Fig3, Assumption::RotatingStar)
                            .with_horizon(60_000, 0)
                            .with_seeds(&[1]);
                    let outcome = &scenario.run()[0];
                    (outcome.messages_sent, outcome.bytes_sent)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
