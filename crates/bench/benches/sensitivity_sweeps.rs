//! E10 — sensitivity of the stabilisation time to D, crashes and delta.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e10_sensitivity(true));
    let mut group = c.benchmark_group("e10_sensitivity_sweeps");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fig3_two_crashes_until_stable", |b| {
        b.iter(|| {
            let scenario =
                Scenario::new("bench-e10", 5, 2, Algorithm::Fig3, Assumption::RotatingStar)
                    .with_crash(0, 20_000)
                    .with_crash(1, 30_000)
                    .with_horizon(160_000, 15_000)
                    .with_seeds(&[1]);
            scenario.run()[0].stabilization_ticks
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
