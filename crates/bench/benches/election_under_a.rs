//! E2 — election under the intermittent rotating t-star `A`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Background, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e2_election_under_a(true));
    let mut group = c.benchmark_group("e2_election_under_a");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for d in [2u64, 8] {
        group.bench_with_input(BenchmarkId::new("fig3_until_stable_D", d), &d, |b, &d| {
            b.iter(|| {
                let scenario = Scenario::new(
                    "bench-e2",
                    5,
                    2,
                    Algorithm::Fig3,
                    Assumption::Intermittent { d },
                )
                .with_background(Background::Growing)
                .with_horizon(150_000, 15_000)
                .with_seeds(&[1]);
                scenario.run()[0].stabilization_ticks
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
