//! E8 — Ω-based consensus (Theorem 5): decision latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::suite;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e8_consensus(true));
    let mut group = c.benchmark_group("e8_consensus_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    for (label, crash) in [("no_crash", false), ("leader_crash", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &crash, |b, &crash| {
            b.iter(|| {
                let outcome = suite::run_consensus_once(5, 2, None, crash, 300_000, 1);
                assert!(outcome.all_decided);
                outcome.decision_ticks
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
