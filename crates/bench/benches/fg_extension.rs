//! E7 — the `A_{f,g}` extension of Section 7.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use irs_bench::types::GrowthFn;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e7_fg_extension(true));
    let mut group = c.benchmark_group("e7_fg_extension");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(4));
    let f = GrowthFn::Log2;
    let g = GrowthFn::Log2;
    group.bench_function("fg_variant_until_stable", |b| {
        b.iter(|| {
            let scenario = Scenario::new(
                "bench-e7",
                5,
                2,
                Algorithm::Fg { f, g },
                Assumption::FgStar { d: 3, f, g },
            )
            .with_horizon(180_000, 20_000)
            .with_seeds(&[1]);
            scenario.run()[0].stabilization_ticks
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
