//! E4 — suspicion stabilisation over a long horizon.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e4_suspicion_stabilisation(true));
    let mut group = c.benchmark_group("e4_suspicion_stabilisation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(4));
    group.bench_function("fig3_full_horizon_100k", |b| {
        b.iter(|| {
            let scenario = Scenario::new(
                "bench-e4",
                5,
                2,
                Algorithm::Fig3,
                Assumption::Intermittent { d: 4 },
            )
            .with_horizon(100_000, 0)
            .with_seeds(&[1]);
            let outcome = &scenario.run()[0];
            (outcome.distinct_leaders, outcome.stabilization_ticks)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
