//! E1 — election under the rotating t-star `A′`.
//!
//! Prints the (quick-mode) E1 table once, then benchmarks a single
//! representative run: n = 5, Figure 3, rotating star, until stabilisation.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e1_election_under_a_prime(true));
    let mut group = c.benchmark_group("e1_election_under_a_prime");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fig3_n5_until_stable", |b| {
        b.iter(|| {
            let scenario =
                Scenario::new("bench-e1", 5, 2, Algorithm::Fig3, Assumption::RotatingStar)
                    .with_horizon(120_000, 15_000)
                    .with_seeds(&[1]);
            let outcome = &scenario.run()[0];
            assert!(outcome.stabilized);
            outcome.stabilization_ticks
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
