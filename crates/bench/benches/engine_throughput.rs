//! Engine throughput: raw discrete-event rate of the simulation hot path.
//!
//! Unlike the E1–E10 benches (which measure whole experiments), this target
//! isolates the engine itself: a fixed-horizon Figure 3 run under the
//! rotating star, reported as processed events per second (message
//! deliveries + timer fires). The measured medians are also written to
//! `BENCH_engine.json` at the workspace root so the performance trajectory
//! is tracked across PRs — see EXPERIMENTS.md.
//!
//! Two regimes are tracked, both following the `Scenario` gossip default
//! (delta-encoded ALIVE gossip from `n = 128` up, full vectors below — see
//! `Scenario::delta_gossip`):
//!
//! * `n ∈ {8, 32, 64}` run the paper's full-vector gossip at the same
//!   30 000-tick horizon as PR 1, so those cells stay comparable across the
//!   whole trajectory;
//! * `n ∈ {128, 256}` are the large-n cells introduced in PR 2. They run the
//!   large-n configuration — delta-encoded gossip with a full refresh every
//!   8 broadcasts, proven trace-equivalent in leader history by the
//!   `delta_gossip` tests — at shorter horizons (events per tick grows with
//!   n², so a shorter horizon keeps the wall-clock budget flat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::{Algorithm, Assumption, Scenario};
use std::path::PathBuf;
use std::time::Duration;

/// One tracked cell: system size and horizon. The gossip configuration is
/// the `Scenario` default for that size, resolved by [`cell_scenario`] and
/// reported per cell in `BENCH_engine.json`.
struct Cell {
    n: usize,
    t: usize,
    horizon: u64,
}

const CELLS: &[Cell] = &[
    Cell {
        n: 8,
        t: 3,
        horizon: 30_000,
    },
    Cell {
        n: 32,
        t: 15,
        horizon: 30_000,
    },
    Cell {
        n: 64,
        t: 31,
        horizon: 30_000,
    },
    Cell {
        n: 128,
        t: 63,
        horizon: 3_000,
    },
    Cell {
        n: 256,
        t: 127,
        horizon: 1_000,
    },
];

fn cell_scenario(cell: &Cell) -> Scenario {
    Scenario::new(
        "engine-throughput",
        cell.n,
        cell.t,
        Algorithm::Fig3,
        Assumption::RotatingStar,
    )
    .with_horizon(cell.horizon, 0)
    .with_seeds(&[1])
}

fn run_once(cell: &Cell) -> u64 {
    let scenario = cell_scenario(cell);
    let outcome = &scenario.run()[0];
    // Every sent message is eventually delivered (or dropped on a crashed
    // process — there are no crashes here), and every closed round fires a
    // timer: sent messages + closed rounds approximate the event count well
    // enough for a throughput trend line.
    outcome.messages_sent + outcome.rounds_closed
}

fn bench(c: &mut Criterion) {
    {
        let mut group = c.benchmark_group("engine_throughput");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_secs(1))
            .measurement_time(Duration::from_secs(5));
        for cell in CELLS {
            group.bench_with_input(
                BenchmarkId::new("fig3_fixed_horizon_n", cell.n),
                cell,
                |b, cell| b.iter(|| run_once(cell)),
            );
        }
        group.finish();
    }

    // Convert the measured medians into events/sec and persist them for the
    // cross-PR trajectory.
    let results = c.take_results();
    let mut entries = Vec::new();
    for (cell, result) in CELLS.iter().zip(&results) {
        let events = run_once(cell);
        let secs = result.median.as_secs_f64().max(1e-9);
        let gossip = match cell_scenario(cell).delta_gossip {
            None => "full".to_string(),
            Some(r) => format!("delta/{r}"),
        };
        entries.push(format!(
            "    {{ \"n\": {}, \"horizon_ticks\": {}, \"gossip\": \"{gossip}\", \"events\": {events}, \"median_seconds\": {secs:.6}, \"events_per_second\": {:.0} }}",
            cell.n,
            cell.horizon,
            events as f64 / secs
        ));
        println!(
            "engine_throughput n={} ({gossip}): {events} events in {secs:.4}s median -> {:.0} events/s",
            cell.n,
            events as f64 / secs
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_engine.json"]
        .iter()
        .collect();
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
