//! Engine throughput: raw discrete-event rate of the simulation hot path.
//!
//! Unlike the E1–E10 benches (which measure whole experiments), this target
//! isolates the engine itself: a fixed-horizon Figure 3 run under the
//! rotating star at n ∈ {8, 32, 64}, reported as processed events per second
//! (message deliveries + timer fires). The measured medians are also written
//! to `BENCH_engine.json` at the workspace root so the performance trajectory
//! is tracked across PRs — see EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::{Algorithm, Assumption, Scenario};
use std::path::PathBuf;
use std::time::Duration;

/// The (n, t) system sizes whose event throughput is tracked.
const SIZES: &[(usize, usize)] = &[(8, 3), (32, 15), (64, 31)];
/// Fixed horizon in ticks; long enough to dominate set-up costs.
const HORIZON: u64 = 30_000;

fn run_once(n: usize, t: usize) -> u64 {
    let scenario = Scenario::new(
        "engine-throughput",
        n,
        t,
        Algorithm::Fig3,
        Assumption::RotatingStar,
    )
    .with_horizon(HORIZON, 0)
    .with_seeds(&[1]);
    let outcome = &scenario.run()[0];
    // Every sent message is eventually delivered (or dropped on a crashed
    // process — there are no crashes here), and every closed round fires a
    // timer: sent messages + closed rounds approximate the event count well
    // enough for a throughput trend line.
    outcome.messages_sent + outcome.rounds_closed
}

fn events_processed(n: usize, t: usize) -> u64 {
    run_once(n, t)
}

fn bench(c: &mut Criterion) {
    {
        let mut group = c.benchmark_group("engine_throughput");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_secs(1))
            .measurement_time(Duration::from_secs(5));
        for &(n, t) in SIZES {
            group.bench_with_input(
                BenchmarkId::new("fig3_fixed_horizon_n", n),
                &(n, t),
                |b, &(n, t)| b.iter(|| run_once(n, t)),
            );
        }
        group.finish();
    }

    // Convert the measured medians into events/sec and persist them for the
    // cross-PR trajectory.
    let results = c.take_results();
    let mut entries = Vec::new();
    for (&(n, t), result) in SIZES.iter().zip(&results) {
        let events = events_processed(n, t);
        let secs = result.median.as_secs_f64().max(1e-9);
        entries.push(format!(
            "    {{ \"n\": {n}, \"events\": {events}, \"median_seconds\": {secs:.6}, \"events_per_second\": {:.0} }}",
            events as f64 / secs
        ));
        println!(
            "engine_throughput n={n}: {events} events in {secs:.4}s median -> {:.0} events/s",
            events as f64 / secs
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"horizon_ticks\": {HORIZON},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "..", "..", "BENCH_engine.json"]
        .iter()
        .collect();
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
