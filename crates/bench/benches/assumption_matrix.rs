//! E6 — the assumption matrix (which algorithm stabilises under which
//! assumption).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_bench::experiments::{suite, Algorithm, Assumption, Background, Scenario};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    println!("{}", suite::e6_assumption_matrix(true));
    let mut group = c.benchmark_group("e6_assumption_matrix");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(3));
    // One representative positive cell and one representative negative cell.
    let cells = [
        (
            "fig3_under_message_pattern",
            Algorithm::Fig3,
            Assumption::MessagePattern,
        ),
        (
            "timeout_all_under_message_pattern",
            Algorithm::TimeoutAll,
            Assumption::MessagePattern,
        ),
    ];
    for (label, algorithm, assumption) in cells {
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let scenario = Scenario::new("bench-e6", 4, 1, algorithm, assumption)
                    .with_background(Background::Growing)
                    .with_horizon(100_000, 15_000)
                    .with_seeds(&[1]);
                scenario.run()[0].stabilized
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
