//! Criterion benchmark harness.
//!
//! This crate has no library code of its own; every benchmark target under
//! `benches/` corresponds to one experiment family of the workspace-root
//! `EXPERIMENTS.md` (which maps each target to the paper table it
//! reproduces) and drives the same [`irs_experiments`] scenarios in `quick`
//! mode, so that `cargo bench --workspace` regenerates a (reduced) version
//! of every table while also measuring how long each scenario takes to
//! simulate. The extra `engine_throughput` target tracks the raw event rate
//! of the simulation engine across PRs via `BENCH_engine.json`.

#![forbid(unsafe_code)]

// Re-export the crates the bench targets use so that a single dependency
// suffices inside `benches/*.rs`.
pub use irs_baselines as baselines;
pub use irs_consensus as consensus;
pub use irs_experiments as experiments;
pub use irs_omega as omega;
pub use irs_sim as sim;
pub use irs_types as types;
