//! Kill -9 crash-restart durability, end to end across OS processes.
//!
//! The parent spawns `N` durable replica children over localhost UDP (the
//! `kv_cluster` re-exec harness, plus a per-node data directory), writes
//! through a real client, then SIGKILLs one replica mid-service — no
//! flush, no goodbye. The survivors keep serving (majority intact). The
//! parent respawns the victim with the *same identity*: the same UDP port
//! (`reexec::child_rejoin_mesh`) and the same data directory, so the
//! restarted process recovers from its snapshot + WAL and catches the
//! missed suffix up from its peers. The verdict is machine-checked:
//!
//! * every replica — the restarted one included — reports the same store
//!   digest, and
//! * no acked write is lost (`applied ≥ acked`), and
//! * replay is deterministic: recovering the victim's directory twice
//!   offline yields byte-identical state both times.

use irs_net::{reexec, UdpTransport};
use irs_svc::{run_svc_node, SvcClient, SvcConfig};
use irs_types::ProcessId;
use std::io::BufRead;
use std::sync::atomic::Ordering;
use std::time::Duration;

const N: usize = 3;
const TICK: Duration = Duration::from_micros(500);

fn config(base: &std::path::Path) -> SvcConfig {
    SvcConfig::new(N, 1).with_tick(TICK).with_data_dir(base)
}

fn child_main(id: u32, base: &std::path::Path) {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    // A respawned incarnation is told which port its predecessor held.
    let transport = match std::env::var("IRS_RD_PORT") {
        Ok(port) => reexec::child_rejoin_mesh(&mut lines, N + 1, port.parse().expect("port env")),
        Err(_) => reexec::child_join_mesh(&mut lines, N + 1),
    };

    let config = config(base);
    let replica = config.replica(ProcessId::new(id));
    let handle = irs_runtime::NodeHandle::new();
    let observer = handle.clone();
    let node = std::thread::spawn(move || run_svc_node(replica, transport, config, handle));

    for line in lines {
        if line.expect("stdin line").trim() == "STOP" {
            break;
        }
    }
    observer.stop.store(true, Ordering::SeqCst);
    let replica = node.join().expect("node thread");
    println!(
        "DIGEST {:x} {}",
        replica.store().digest(),
        replica.store().applied()
    );
}

/// Recovers a replica offline from its data directory and returns the
/// restored store's `(digest, applied)` — no networking, pure replay.
fn recover_offline(base: &std::path::Path, id: u32) -> (u64, u64) {
    let config = config(base);
    let replica = config.replica(ProcessId::new(id));
    (replica.store().digest(), replica.store().applied())
}

#[test]
fn killed_replica_recovers_with_identical_state_and_no_acked_loss() {
    let base = match std::env::var("IRS_RD_DIR") {
        Ok(dir) => std::path::PathBuf::from(dir),
        Err(_) => {
            let base = std::env::temp_dir().join(format!("irs-rd-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&base);
            base
        }
    };
    if let Ok(id) = std::env::var("IRS_RD_CHILD") {
        child_main(id.parse().expect("child id"), &base);
        return;
    }

    let spawn_args = |cmd: &mut std::process::Command, id: usize| {
        cmd.args([
            "--exact",
            "killed_replica_recovers_with_identical_state_and_no_acked_loss",
            "--nocapture",
        ])
        .env("IRS_RD_CHILD", id.to_string())
        .env("IRS_RD_DIR", &base);
    };
    let (mut children, mut readers) = reexec::spawn_self_children(N, |id, cmd| spawn_args(cmd, id));

    let mut client_transport = UdpTransport::bind_localhost_retry().expect("bind client socket");
    let client_port = client_transport.local_addr().expect("client addr").port();
    let replica_ports = reexec::exchange_peer_table(&mut children, &mut readers, &[client_port]);
    let mut peer_addrs: Vec<_> = replica_ports
        .iter()
        .map(|&p| reexec::localhost(p))
        .collect();
    peer_addrs.push(reexec::localhost(client_port));
    client_transport.set_peers(peer_addrs);

    let mut client = SvcClient::new(ProcessId::new(N as u32), N, client_transport, 0xDEAD);
    let deadline = Duration::from_secs(40);
    let mut acked = 0u64;
    for k in 0..4u64 {
        client
            .put(format!("pre-{k}").as_bytes(), &k.to_le_bytes(), deadline)
            .expect("acked put before the crash");
        acked += 1;
    }

    // kill -9 the initial leader: no flush, no drain, mid-service.
    let victim = 0usize;
    children.0[victim].kill().expect("SIGKILL child");
    children.0[victim].wait().expect("reap child");

    // The surviving majority keeps acking writes the victim never sees.
    for k in 0..4u64 {
        client
            .put(format!("down-{k}").as_bytes(), &k.to_le_bytes(), deadline)
            .expect("acked put while the victim is down");
        acked += 1;
    }

    // Respawn with the same identity: same UDP port, same data directory.
    let (mut respawned, mut respawned_readers) = reexec::spawn_self_children(1, |_, cmd| {
        spawn_args(cmd, victim);
        cmd.env("IRS_RD_PORT", replica_ports[victim].to_string());
    });
    let port = reexec::read_tagged_line(&mut respawned_readers[0], "PORT ", victim);
    assert_eq!(port.parse::<u16>().unwrap(), replica_ports[victim]);
    let table: Vec<String> = replica_ports
        .iter()
        .chain(std::iter::once(&client_port))
        .map(u16::to_string)
        .collect();
    reexec::send_line(&mut respawned.0[0], &format!("PEERS {}", table.join(" ")));
    children.0[victim] = respawned.0.remove(0);
    readers[victim] = respawned_readers.remove(0);

    // Writes after the restart, then let catch-up settle the rejoiner.
    for k in 0..4u64 {
        client
            .put(format!("post-{k}").as_bytes(), &k.to_le_bytes(), deadline)
            .expect("acked put after the restart");
        acked += 1;
    }
    std::thread::sleep(Duration::from_secs(2));
    reexec::broadcast_line(&mut children, "STOP");
    let digests: Vec<(String, u64)> = readers
        .iter_mut()
        .enumerate()
        .map(|(who, r)| {
            let line = reexec::read_tagged_line(r, "DIGEST ", who);
            let mut parts = line.split_whitespace();
            let digest = parts.next().expect("digest").to_string();
            let applied: u64 = parts.next().expect("applied").parse().expect("count");
            (digest, applied)
        })
        .collect();
    children.join_all();

    assert!(
        digests.iter().all(|d| d.0 == digests[0].0),
        "replicas diverged after kill -9 + restart: {digests:?}"
    );
    assert!(
        digests[0].1 >= acked,
        "acked {acked} writes but replicas applied only {}",
        digests[0].1
    );

    // Deterministic replay: the same bytes recover to the same state,
    // twice, and that state is the one the restarted process reported.
    let first = recover_offline(&base, victim as u32);
    let second = recover_offline(&base, victim as u32);
    assert_eq!(first, second, "offline recovery must be deterministic");
    assert_eq!(
        format!("{:x}", first.0),
        digests[victim].0,
        "offline recovery disagrees with the restarted replica"
    );

    let _ = std::fs::remove_dir_all(&base);
}
