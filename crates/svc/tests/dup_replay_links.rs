//! Exactly-once application and ballot safety under Byzantine-lite links.
//!
//! Every replica's receive side duplicates frames and re-injects stale
//! ones (`LinkModel::with_duplication` / `with_stale_replay`), so the
//! consensus plane sees back-to-back copies of Prepares, Accepts and
//! Decides plus old protocol messages re-uttered out of context, and the
//! client plane sees repeated `Request` frames. The service must shrug:
//! the `(client, seq)` session filter applies each write exactly once, and
//! quorum intersection keeps every replica's decided sequence — and hence
//! store digest — identical.

use irs_net::LinkModel;
use irs_svc::{SvcCluster, SvcConfig};
use irs_types::{ProcessId, Protocol};
use std::time::Duration;

#[test]
fn duplicated_and_replayed_frames_never_break_exactly_once_or_agreement() {
    let (cluster, mut clients) =
        SvcCluster::with_link_models(3, 1, SvcConfig::new(3, 1), |p: ProcessId| {
            LinkModel::new(0xB0B0 ^ u64::from(p.as_u32()))
                .with_duplication(0.25)
                .with_stale_replay(0.25)
        });
    let client = &mut clients[0];
    let deadline = Duration::from_secs(30);
    let mut acked = 0u64;
    for k in 0..12u64 {
        let key = format!("dup-k{}", k % 4).into_bytes();
        client
            .put(&key, &k.to_le_bytes(), deadline)
            .expect("acked put under dup/replay links");
        acked += 1;
    }
    let finals = cluster.shutdown();

    // Ballot safety: every replica decided the same sequence, so all
    // stores are digest-identical with the writes' final values.
    let digests: Vec<u64> = finals.iter().map(|r| r.store().digest()).collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged under dup/replay links: {digests:x?}"
    );
    for r in &finals {
        for k in 8..12u64 {
            // last write per key wins (k = 8..12 hit keys 0..4 last)
            assert_eq!(
                r.store().get(format!("dup-k{}", k % 4).as_bytes()),
                Some(k.to_le_bytes().as_slice()),
                "replica {} lost or reordered a write",
                r.id()
            );
        }
        // Exactly-once: duplicated Request frames and re-decided copies
        // never double-apply — the session filter counts them as skips.
        assert_eq!(
            r.store().applied(),
            acked,
            "replica {} applied a write more than once (or lost one)",
            r.id()
        );
    }
}
