//! Acceptance tests for the batched/pipelined replication path and
//! snapshot-based log compaction.
//!
//! * Under sustained closed-loop load with a small snapshot interval, every
//!   replica's retained decided prefix must stay bounded by
//!   O(interval + pipeline window) — the log must not grow with traffic.
//!   The run is required to cover ≥ 10× the snapshot interval of slots.
//! * The consistency contract (identical maps, acked prefix survives,
//!   per-key freshness) must hold with batching and pipelining on.
//! * A wiped replica (fresh store, empty log) whose peers have truncated
//!   their history must converge via snapshot install, not per-slot replay.

use irs_consensus::LogMsg;
use irs_svc::loadgen::{check_consistency, closed_loop, ClosedLoopOptions};
use irs_svc::{SvcCluster, SvcConfig, SvcMsg, SvcReplica};
use irs_types::{Actions, Destination, Introspect, ProcessId, Protocol, SystemConfig};
use std::time::Duration;

const N: usize = 5;
const CLIENTS: usize = 3;
const BATCH_MAX: usize = 8;
const PIPELINE_DEPTH: u64 = 4;
const SNAPSHOT_INTERVAL: u64 = 8;

#[test]
fn compaction_bounds_log_memory_under_batched_pipelined_load() {
    let config = SvcConfig::new(N, CLIENTS)
        .with_batching(BATCH_MAX, PIPELINE_DEPTH)
        .with_snapshot_interval(SNAPSHOT_INTERVAL);
    let (cluster, mut clients) = SvcCluster::in_memory(N, CLIENTS, config);
    let (report, acked) = closed_loop(
        &mut clients,
        ClosedLoopOptions {
            duration: Duration::from_secs(2),
            op_deadline: Duration::from_secs(8),
            ..ClosedLoopOptions::default()
        },
    );
    assert!(report.ops > 0, "no operation acknowledged: {report:?}");

    let finals = cluster.shutdown();
    let refs: Vec<&SvcReplica> = finals.iter().collect();
    if let Err(violation) = check_consistency(&refs, &acked) {
        panic!("batched/pipelined consistency violated: {violation}");
    }

    // The run must have covered many snapshot intervals of traffic, and
    // every replica's retained history must be bounded by the interval plus
    // the pipeline window (slack for decisions landing during the drain).
    let bound = SNAPSHOT_INTERVAL + 2 * PIPELINE_DEPTH + 4;
    for r in &finals {
        let frontier = r.log().frontier_slot();
        assert!(
            frontier >= 10 * SNAPSHOT_INTERVAL,
            "replica {} decided only {frontier} slots — the run is too short \
             to exercise compaction",
            r.id()
        );
        assert!(
            r.log().compact_floor() > 0,
            "replica {} never truncated",
            r.id()
        );
        let retained = r.log().retained_decisions() as u64;
        assert!(
            retained <= bound,
            "replica {} retains {retained} decisions (> {bound}): memory is \
             not bounded by the snapshot interval + pipeline window",
            r.id()
        );
    }
    println!(
        "compaction: {} ops over ≥ {} slots, retained ≤ {bound} per replica",
        report.ops,
        finals[0].log().frontier_slot()
    );
}

#[test]
fn wiped_replica_converges_via_snapshot_install() {
    let config = SvcConfig::new(N, CLIENTS)
        .with_batching(BATCH_MAX, PIPELINE_DEPTH)
        .with_snapshot_interval(SNAPSHOT_INTERVAL);
    let (cluster, mut clients) = SvcCluster::in_memory(N, CLIENTS, config);
    let (report, _) = closed_loop(
        &mut clients,
        ClosedLoopOptions {
            duration: Duration::from_secs(1),
            op_deadline: Duration::from_secs(8),
            ..ClosedLoopOptions::default()
        },
    );
    assert!(report.ops > 0, "no operation acknowledged: {report:?}");
    let mut finals = cluster.shutdown();
    let mut loaded = finals.remove(0);
    let loaded_id = loaded.id();
    assert!(
        loaded.log().compact_floor() > 0,
        "run too short: nothing was truncated, per-slot replay would suffice"
    );

    // A wiped replacement for p4: fresh store, empty log, far behind a
    // cluster whose decided history below the floor no longer exists.
    let system = SystemConfig::new(N, (N - 1) / 2).unwrap();
    let wiped_id = ProcessId::new(4);
    let mut wiped = SvcReplica::with_tuning(
        wiped_id,
        system,
        BATCH_MAX,
        PIPELINE_DEPTH,
        SNAPSHOT_INTERVAL,
    );

    // Catch-up conversation: the wiped replica asks from its frontier, the
    // loaded one answers (snapshot install first, then bounded Decide
    // replays), until the stores agree.
    let mut rounds = 0;
    while wiped.store().digest() != loaded.store().digest() {
        rounds += 1;
        assert!(rounds <= 64, "catch-up did not converge");
        let from = wiped.log().frontier_slot();
        let mut answer = Actions::new();
        loaded.on_message(
            wiped_id,
            &SvcMsg::Log(LogMsg::Catchup { from }),
            &mut answer,
        );
        let mut progressed = false;
        for send in answer.sends() {
            if matches!(send.dest, Destination::To(p) if p == wiped_id) {
                wiped.on_message(loaded_id, &send.msg, &mut Actions::new());
                progressed = true;
            }
        }
        assert!(progressed, "the loaded replica stopped answering");
    }
    assert_eq!(wiped.store().map(), loaded.store().map());
    assert_eq!(
        wiped.snapshot().gauge("snapshot_installs"),
        Some(1),
        "convergence must have gone through the snapshot install path"
    );
    assert_eq!(wiped.log().frontier_slot(), loaded.log().frontier_slot());
    println!(
        "wiped replica converged in {rounds} rounds to digest {:#x} \
         (floor {})",
        wiped.store().digest(),
        wiped.log().compact_floor()
    );
}
