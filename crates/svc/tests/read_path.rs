//! The three-tier read path end to end: an in-memory n = 5 cluster under
//! mixed read/write load at each [`ReadTier`], with every run's reads
//! machine-checked against the acked write order
//! ([`check_read_linearizability`]) and every run's writes against the
//! surviving state ([`check_consistency`]). A final crash run kills the
//! leader while its lease may still be live and requires linearizable
//! reads to stay linearizable across the reign change — the E16 acceptance
//! invariant, pinned here as a test.

use irs_svc::loadgen::{
    await_survivor_convergence, check_consistency, check_read_linearizability, mixed_loop,
    mixed_loop_with_leader_crash, ClientReads, MixedLoopOptions, ObservedRead,
};
use irs_svc::{ReadTier, SvcCluster, SvcConfig, SvcReplica};
use irs_types::Protocol;
use std::time::Duration;

const N: usize = 5;
const CLIENTS: usize = 3;

fn mixed_run(tier: ReadTier, read_pct: u32) {
    let (cluster, mut clients) = SvcCluster::in_memory(N, CLIENTS, SvcConfig::new(N, CLIENTS));
    let (report, acked, reads) = mixed_loop(
        &mut clients,
        MixedLoopOptions {
            duration: Duration::from_millis(1500),
            op_deadline: Duration::from_secs(5),
            read_pct,
            tier,
            ..MixedLoopOptions::default()
        },
    );
    assert!(report.writes > 0, "no write was acked: {report:?}");
    assert!(report.reads > 0, "no read was answered: {report:?}");
    if let Err(violation) = check_read_linearizability(&reads) {
        panic!("{tier:?} reads violated their guarantee: {violation}");
    }
    let finals = cluster.shutdown();
    let refs: Vec<&SvcReplica> = finals.iter().collect();
    if let Err(violation) = check_consistency(&refs, &acked) {
        panic!("write consistency violated under {tier:?} mix: {violation}");
    }
}

#[test]
fn lease_reads_are_linearizable_under_a_read_heavy_mix() {
    mixed_run(ReadTier::Lease, 95);
}

#[test]
fn read_index_reads_are_linearizable_under_a_balanced_mix() {
    mixed_run(ReadTier::ReadIndex, 50);
}

#[test]
fn stale_reads_never_observe_unissued_values() {
    mixed_run(ReadTier::Stale, 95);
}

/// Leader crash mid-lease: lease reads must remain linearizable across the
/// reign change — a deposed leader must not serve from a lease it can no
/// longer defend, and the new leader's reads must still observe every
/// acked write.
#[test]
fn lease_reads_stay_linearizable_across_a_leader_crash() {
    let (cluster, mut clients) = SvcCluster::in_memory(N, CLIENTS, SvcConfig::new(N, CLIENTS));
    let (report, acked, reads, crashed) = mixed_loop_with_leader_crash(
        &cluster,
        &mut clients,
        MixedLoopOptions {
            duration: Duration::from_secs(3),
            op_deadline: Duration::from_secs(8),
            read_pct: 95,
            tier: ReadTier::Lease,
            ..MixedLoopOptions::default()
        },
        Duration::from_millis(900),
    );
    assert!(report.writes > 0, "no write was acked: {report:?}");
    assert!(report.reads > 0, "no read was answered: {report:?}");
    if let Err(violation) = check_read_linearizability(&reads) {
        panic!("lease reads went non-linearizable across the crash: {violation}");
    }
    assert!(
        await_survivor_convergence(&cluster, crashed, Duration::from_secs(30)),
        "survivors never converged after the crash"
    );
    let finals = cluster.shutdown();
    let surviving: Vec<&SvcReplica> = finals.iter().filter(|r| r.id() != crashed).collect();
    if let Err(violation) = check_consistency(&surviving, &acked) {
        panic!("write consistency violated after leader crash: {violation}");
    }
    println!(
        "crash-lease: {} reads + {} writes acked, leader {crashed} crashed, reads linearizable",
        report.reads, report.writes
    );
}

// ---- The checker itself must catch what it claims to catch ----

fn one_read(
    value_seq: Option<u64>,
    acked_floor: Option<u64>,
    issued_ceiling: Option<u64>,
) -> ObservedRead {
    ObservedRead {
        key: b"k".to_vec(),
        value_seq,
        frontier: 0,
        acked_floor,
        issued_ceiling,
    }
}

fn log_of(tier: ReadTier, reads: Vec<ObservedRead>) -> Vec<ClientReads> {
    vec![ClientReads {
        client: 7,
        tier: Some(tier),
        reads,
    }]
}

#[test]
fn checker_flags_an_acked_write_going_invisible() {
    // The client acked seq 5 on the key, then a lease read returned seq 3.
    let log = log_of(ReadTier::Lease, vec![one_read(Some(3), Some(5), Some(5))]);
    let err = check_read_linearizability(&log).unwrap_err();
    assert!(err.contains("acked"), "wrong violation: {err}");
}

#[test]
fn checker_flags_observed_seqs_going_backwards() {
    let log = log_of(
        ReadTier::ReadIndex,
        vec![
            one_read(Some(4), Some(4), Some(4)),
            one_read(Some(2), None, Some(4)),
        ],
    );
    let err = check_read_linearizability(&log).unwrap_err();
    assert!(err.contains("backwards"), "wrong violation: {err}");
}

#[test]
fn checker_flags_values_never_issued_even_for_stale_reads() {
    // Even a stale read may never observe a seq above what was issued.
    let log = log_of(ReadTier::Stale, vec![one_read(Some(9), None, Some(4))]);
    let err = check_read_linearizability(&log).unwrap_err();
    assert!(err.contains("ceiling"), "wrong violation: {err}");
}

#[test]
fn checker_exempts_stale_reads_from_the_acked_floor() {
    // A stale read lagging the acked floor is within contract.
    let log = log_of(ReadTier::Stale, vec![one_read(Some(3), Some(5), Some(5))]);
    assert!(check_read_linearizability(&log).is_ok());
}

#[test]
fn checker_accepts_a_clean_linearizable_history() {
    let log = log_of(
        ReadTier::Lease,
        vec![
            one_read(None, None, None),
            one_read(Some(2), Some(2), Some(2)),
            one_read(Some(6), Some(6), Some(7)),
        ],
    );
    assert!(check_read_linearizability(&log).is_ok());
}
