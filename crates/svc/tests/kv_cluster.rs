//! The KV service as genuinely separate OS processes over localhost UDP
//! (the service analogue of `runtime`'s `socket_cluster` re-exec test).
//!
//! The parent run spawns `N` children with `IRS_KV_CHILD=<id>` set; each
//! child joins the UDP mesh through the shared re-exec handshake
//! (`irs_net::reexec`) and drives one [`irs_svc::SvcReplica`] with
//! [`irs_svc::run_svc_node`]. The parent connects an [`irs_svc::SvcClient`]
//! over its own socket, performs writes across the kernel network stack,
//! then stops the children (`STOP` on stdin) and asserts every replica
//! reports the same store digest (`DIGEST <hex> <applied>`) with every
//! acked write applied.

use irs_net::{reexec, UdpTransport};
use irs_svc::{run_svc_node, SvcClient, SvcConfig};
use irs_types::ProcessId;
use std::io::BufRead;
use std::sync::atomic::Ordering;
use std::time::Duration;

const N: usize = 5;
/// 500 µs ticks keep the consensus timers gentle across OS processes.
const TICK: Duration = Duration::from_micros(500);

fn child_main(id: u32) {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let transport = reexec::child_join_mesh(&mut lines, N + 1);

    let config = SvcConfig::new(N, 1).with_tick(TICK);
    let replica = config.replica(ProcessId::new(id));
    let handle = irs_runtime::NodeHandle::new();
    let observer = handle.clone();
    let node = std::thread::spawn(move || run_svc_node(replica, transport, config, handle));

    // Run until the parent says stop.
    for line in lines {
        if line.expect("stdin line").trim() == "STOP" {
            break;
        }
    }
    observer.stop.store(true, Ordering::SeqCst);
    let replica = node.join().expect("node thread");
    println!(
        "DIGEST {:x} {}",
        replica.store().digest(),
        replica.store().applied()
    );
}

#[test]
fn udp_kv_cluster_across_os_processes_applies_acked_writes_identically() {
    if let Ok(id) = std::env::var("IRS_KV_CHILD") {
        child_main(id.parse().expect("child id"));
        return;
    }

    let (mut children, mut readers) = reexec::spawn_self_children(N, |id, cmd| {
        cmd.args([
            "--exact",
            "udp_kv_cluster_across_os_processes_applies_acked_writes_identically",
            "--nocapture",
        ])
        .env("IRS_KV_CHILD", id.to_string());
    });

    // The parent's client socket is endpoint N.
    let mut client_transport = UdpTransport::bind_localhost_retry().expect("bind client socket");
    let client_port = client_transport.local_addr().expect("client addr").port();
    let replica_ports = reexec::exchange_peer_table(&mut children, &mut readers, &[client_port]);
    let mut peer_addrs: Vec<_> = replica_ports
        .iter()
        .map(|&p| reexec::localhost(p))
        .collect();
    peer_addrs.push(reexec::localhost(client_port));
    client_transport.set_peers(peer_addrs);

    // Real writes across five OS processes.
    let mut client = SvcClient::new(ProcessId::new(N as u32), N, client_transport, 0xD15C);
    let deadline = Duration::from_secs(40);
    let mut acked = 0u64;
    for k in 0..6u64 {
        let key = format!("proc-k{}", k % 3).into_bytes();
        let value = k.to_le_bytes().to_vec();
        client.put(&key, &value, deadline).expect("acked put");
        acked += 1;
    }

    // Let catch-up settle the stragglers, then freeze and compare.
    std::thread::sleep(Duration::from_secs(2));
    reexec::broadcast_line(&mut children, "STOP");
    let digests: Vec<(String, u64)> = readers
        .iter_mut()
        .enumerate()
        .map(|(who, r)| {
            let line = reexec::read_tagged_line(r, "DIGEST ", who);
            let mut parts = line.split_whitespace();
            let digest = parts.next().expect("digest").to_string();
            let applied: u64 = parts.next().expect("applied").parse().expect("count");
            (digest, applied)
        })
        .collect();
    children.join_all();

    assert!(
        digests.iter().all(|d| d.0 == digests[0].0),
        "the {N} OS processes hold different stores: {digests:?}"
    );
    assert!(
        digests[0].1 >= acked,
        "acked {acked} writes but replicas applied only {}",
        digests[0].1
    );
}
