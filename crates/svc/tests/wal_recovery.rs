//! Crash-recovery equivalence: a replica recovered from its WAL (and
//! snapshot) must be *digest-identical* to a replica that never crashed —
//! under random workloads, arbitrary torn tails, and crashes that land in
//! the middle of a snapshot write.
//!
//! The vendored proptest has no composite strategies, so workloads are
//! built from flat seed vectors (the same idiom as the store's proptests).

use irs_consensus::{Batch, LogMsg, PaxosMsg};
use irs_svc::{FsyncPolicy, KvOp, KvWrite, SvcMsg, SvcReplica};
use irs_types::{Actions, ProcessId, Protocol, SystemConfig};
use irs_wal::WalRecord;
use proptest::prelude::*;
use std::path::PathBuf;

fn system() -> SystemConfig {
    SystemConfig::new(3, 1).unwrap()
}

/// A fresh per-test scratch directory (removed up front so a previous
/// failed run cannot leak state into this one).
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("irs-walrec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic pseudo-random write stream: a few clients, occasionally
/// stale seqs (duplicate-filter work), puts and deletes over a small key
/// space.
fn writes_from(seeds: &[u64]) -> Vec<KvWrite> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let client = s % 3;
            let seq = 1 + (i as u64 / 2) % 8;
            let key = vec![b'k', (s % 5) as u8];
            if s % 7 == 0 {
                KvWrite {
                    client,
                    seq,
                    op: KvOp::Del { key },
                }
            } else {
                KvWrite {
                    client,
                    seq,
                    op: KvOp::Put {
                        key,
                        value: s.to_le_bytes().to_vec(),
                    },
                }
            }
        })
        .collect()
}

fn decide(slot: u64, batch: Batch<irs_svc::Command>) -> SvcMsg {
    SvcMsg::Log(LogMsg::Slot {
        slot,
        msg: PaxosMsg::Decide { v: batch },
    })
}

fn feed(replica: &mut SvcReplica, msg: &SvcMsg) {
    replica.on_message(ProcessId::new(1), msg, &mut Actions::new());
}

fn durable(dir: &std::path::Path, snapshot_interval: u64) -> SvcReplica {
    SvcReplica::durable(
        ProcessId::new(0),
        system(),
        1,
        1,
        snapshot_interval,
        dir,
        FsyncPolicy::Always,
    )
    .expect("open durable replica")
}

fn state(r: &SvcReplica) -> (u64, u64, usize) {
    (r.store().digest(), r.store().applied(), r.store().len())
}

proptest! {
    /// A clean crash (process gone, files intact): recovery replays the
    /// snapshot + WAL into a store digest-identical to a replica that
    /// lived through the same decided sequence in memory — snapshots,
    /// rotations, batches and duplicate writes included.
    #[test]
    fn recovery_is_digest_identical_to_never_crashed(
        seeds in proptest::collection::vec(0u64..1_000, 1..40),
        batch_len in 1usize..5,
        interval in 0u64..7,
    ) {
        let base = tmpdir("identical");
        let dir = base.join("node-0");
        let writes = writes_from(&seeds);
        let mut durable_replica = durable(&dir, interval);
        let mut memory = SvcReplica::with_tuning(ProcessId::new(0), system(), 1, 1, interval);
        for (slot, chunk) in writes.chunks(batch_len).enumerate() {
            let batch = Batch::new(chunk.iter().map(KvWrite::encode).collect::<Vec<_>>());
            let msg = decide(slot as u64, batch);
            feed(&mut durable_replica, &msg);
            feed(&mut memory, &msg);
        }
        prop_assert_eq!(state(&durable_replica), state(&memory), "pre-crash divergence");
        drop(durable_replica); // the crash: nothing flushed beyond the WAL's own commits
        let recovered = durable(&dir, interval);
        prop_assert_eq!(state(&recovered), state(&memory));
        prop_assert_eq!(recovered.store().map(), memory.store().map());
        let _ = std::fs::remove_dir_all(&base);
    }

    /// A torn tail (the crash landed mid-write): recovery truncates at the
    /// first bad frame and is digest-identical to a never-crashed replica
    /// that saw exactly the surviving record prefix — for *any* cut point.
    /// Recovering the same bytes twice yields the same state.
    #[test]
    fn torn_tails_recover_to_exactly_the_surviving_prefix(
        seeds in proptest::collection::vec(0u64..1_000, 1..32),
        cut in 0usize..4_096,
    ) {
        let base = tmpdir("torn");
        let dir = base.join("node-0");
        let writes = writes_from(&seeds);
        let mut durable_replica = durable(&dir, 0); // WAL-only: no rotation
        for (slot, w) in writes.iter().enumerate() {
            feed(&mut durable_replica, &decide(slot as u64, Batch::one(w.encode())));
        }
        drop(durable_replica);

        // Tear the tail at an arbitrary byte offset from the end.
        let wal_path = dir.join(irs_wal::WAL_FILE);
        let bytes = std::fs::read(&wal_path).expect("read wal");
        let keep = bytes.len().saturating_sub(cut % (bytes.len() + 1));
        std::fs::write(&wal_path, &bytes[..keep]).expect("tear wal tail");

        // The oracle replica replays only the records that survive the cut.
        let (records, valid) = irs_wal::read_records_bytes(&bytes[..keep]);
        prop_assert!(valid <= keep);
        let mut oracle = SvcReplica::with_tuning(ProcessId::new(0), system(), 1, 1, 0);
        for rec in records {
            if let WalRecord::Decide { slot, batch } = rec {
                let batch: Batch<irs_svc::Command> =
                    irs_net::wire::decode_payload(&batch).expect("own record bytes");
                feed(&mut oracle, &decide(slot, batch));
            }
        }
        let first = durable(&dir, 0);
        prop_assert_eq!(state(&first), state(&oracle), "torn-tail recovery diverged");
        prop_assert_eq!(first.store().map(), oracle.store().map());
        drop(first);
        let second = durable(&dir, 0);
        prop_assert_eq!(state(&second), state(&oracle), "recovery is not deterministic");
        let _ = std::fs::remove_dir_all(&base);
    }

    /// A crash in the middle of writing a snapshot leaves a half-written
    /// tmp file next to the last complete snapshot. Recovery must ignore
    /// the tmp file and still be digest-identical to never-crashed.
    #[test]
    fn mid_snapshot_crashes_leave_recovery_intact(
        seeds in proptest::collection::vec(0u64..1_000, 8..40),
    ) {
        let base = tmpdir("midsnap");
        let dir = base.join("node-0");
        let writes = writes_from(&seeds);
        let mut durable_replica = durable(&dir, 4);
        let mut memory = SvcReplica::with_tuning(ProcessId::new(0), system(), 1, 1, 4);
        for (slot, w) in writes.iter().enumerate() {
            let msg = decide(slot as u64, Batch::one(w.encode()));
            feed(&mut durable_replica, &msg);
            feed(&mut memory, &msg);
        }
        drop(durable_replica);
        // The interrupted write: garbage where the next snapshot was going.
        std::fs::write(dir.join("snapshot.bin.tmp"), b"half a snapshot, then power loss")
            .expect("write torn tmp snapshot");
        let recovered = durable(&dir, 4);
        prop_assert_eq!(state(&recovered), state(&memory));
        prop_assert_eq!(recovered.store().map(), memory.store().map());
        let _ = std::fs::remove_dir_all(&base);
    }
}

/// A corrupted snapshot *file* (bit rot, not a torn write) reads as absent
/// rather than installing garbage: recovery falls back to the WAL tail,
/// never panics, and stays deterministic. State may legitimately lag the
/// never-crashed replica — the live cluster heals that via catch-up.
#[test]
fn corrupt_snapshot_files_read_as_absent_not_garbage() {
    let base = tmpdir("rot");
    let dir = base.join("node-0");
    let writes = writes_from(&(0..24u64).map(|i| i * 37 + 1).collect::<Vec<_>>());
    let mut durable_replica = durable(&dir, 4);
    for (slot, w) in writes.iter().enumerate() {
        feed(
            &mut durable_replica,
            &decide(slot as u64, Batch::one(w.encode())),
        );
    }
    let full = state(&durable_replica);
    drop(durable_replica);

    let snap_path = dir.join(irs_wal::SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).expect("snapshot exists after interval 4 × 24 slots");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap_path, &bytes).expect("corrupt snapshot");

    let first = durable(&dir, 4);
    let second = durable(&dir, 4);
    assert_eq!(
        state(&first),
        state(&second),
        "recovery must be deterministic"
    );
    assert!(
        first.store().applied() <= full.1,
        "recovery cannot invent applied writes"
    );
    let _ = std::fs::remove_dir_all(&base);
}
