//! The acceptance test of the service subsystem: an n = 5 KV cluster under
//! a seeded lossy link model, with the current leader crash-stopped in the
//! middle of a closed-loop load. Every surviving replica must converge to
//! an identical applied map, and that map must contain every write any
//! client was acked — no acked command lost, none reordered (per-client
//! applied sequences are monotone by the store's construction; an ack is
//! only ever sent for a write whose effect actually landed).

use irs_net::LinkModel;
use irs_svc::loadgen::{
    await_survivor_convergence, check_consistency, closed_loop_with_leader_crash, ClosedLoopOptions,
};
use irs_svc::{SvcCluster, SvcConfig, SvcReplica};
use irs_types::Protocol;
use std::time::Duration;

const N: usize = 5;
const CLIENTS: usize = 3;

#[test]
fn leader_crash_under_lossy_load_keeps_surviving_replicas_identical() {
    // 5% receiver-side loss on every replica link: enough to force retries,
    // catch-ups and duplicate suppression into the picture, while quorums
    // still form. Clients see clean links (the consensus plane is the thing
    // under stress).
    let (cluster, mut clients) =
        SvcCluster::with_link_models(N, CLIENTS, SvcConfig::new(N, CLIENTS), |p| {
            LinkModel::new(0xC4A5_0BAD ^ u64::from(p.as_u32())).with_drop_prob(0.05)
        });

    // Let the cluster elect and the load ramp, then kill whoever leads
    // mid-flight.
    let (report, acked, crashed) = closed_loop_with_leader_crash(
        &cluster,
        &mut clients,
        ClosedLoopOptions {
            duration: Duration::from_secs(4),
            op_deadline: Duration::from_secs(8),
            ..ClosedLoopOptions::default()
        },
        Duration::from_millis(1200),
    );

    assert!(
        report.ops > 0,
        "no operation was ever acknowledged: {report:?}"
    );
    let acked_total: usize = acked.iter().map(|c| c.acked.len()).sum();
    assert_eq!(acked_total as u64, report.ops);

    // Give the survivors an idle settle window to finish catch-up, then
    // require their snapshots to agree before freezing the state.
    assert!(
        await_survivor_convergence(&cluster, crashed, Duration::from_secs(30)),
        "survivors never converged on a digest"
    );

    let finals = cluster.shutdown();
    let surviving: Vec<&SvcReplica> = finals.iter().filter(|r| r.id() != crashed).collect();
    assert_eq!(surviving.len(), N - 1);
    if let Err(violation) = check_consistency(&surviving, &acked) {
        panic!("consistency violated after leader crash: {violation}");
    }

    println!(
        "crash-consistency: {} ops acked across {} clients, leader {crashed} crashed, \
         {} survivors identical (digest {:#x})",
        report.ops,
        CLIENTS,
        surviving.len(),
        surviving[0].store().digest()
    );
}

/// The same contract with the batched/pipelined replication path and
/// compaction on: the leader is crash-stopped mid-batch (slots carry up to
/// 8 commands, 4 slots in flight) under seeded loss, and the survivors must
/// still converge to identical maps holding every acked write — a decided
/// batch is applied atomically in order or not at all, and truncated
/// history must not break post-crash catch-up.
#[test]
fn leader_crash_mid_batch_keeps_survivors_identical_under_compaction() {
    let config = SvcConfig::new(N, CLIENTS)
        .with_batching(8, 4)
        .with_snapshot_interval(32);
    let (cluster, mut clients) = SvcCluster::with_link_models(N, CLIENTS, config, |p| {
        LinkModel::new(0xBA7C_4C4A ^ u64::from(p.as_u32())).with_drop_prob(0.05)
    });
    let (report, acked, crashed) = closed_loop_with_leader_crash(
        &cluster,
        &mut clients,
        ClosedLoopOptions {
            duration: Duration::from_secs(4),
            op_deadline: Duration::from_secs(8),
            ..ClosedLoopOptions::default()
        },
        Duration::from_millis(1200),
    );
    assert!(
        report.ops > 0,
        "no operation was ever acknowledged: {report:?}"
    );
    assert!(
        await_survivor_convergence(&cluster, crashed, Duration::from_secs(30)),
        "survivors never converged on a digest"
    );
    let finals = cluster.shutdown();
    let surviving: Vec<&SvcReplica> = finals.iter().filter(|r| r.id() != crashed).collect();
    assert_eq!(surviving.len(), N - 1);
    if let Err(violation) = check_consistency(&surviving, &acked) {
        panic!("batched crash-consistency violated: {violation}");
    }
    println!(
        "batched crash-consistency: {} ops acked, leader {crashed} crashed mid-batch, \
         {} survivors identical (digest {:#x}, floor {})",
        report.ops,
        surviving.len(),
        surviving[0].store().digest(),
        surviving[0].log().compact_floor()
    );
}
