//! In-process service deployments: `n` replica node threads over any
//! transport backend, plus connected clients.
//!
//! Mirrors [`irs_runtime::NetCluster`] (thread-per-node, one endpoint per
//! node, snapshots / crash injection / state-returning shutdown), extended
//! with the client plane: the transport mesh is built with `n + c`
//! endpoints, the first `n` host replicas and the rest become
//! [`SvcClient`]s. For the process-per-node deployment over UDP see
//! `examples/kv_cluster.rs`.

use crate::client::SvcClient;
use crate::node::{accept_svc_frame_bytes, run_svc_node, SvcConfig};
use crate::replica::SvcReplica;
use irs_net::{
    FaultyLink, LinkModel, MemNetwork, MemTransport, MuxEndpoint, MuxNetwork, Transport,
    UdpTransport,
};
use irs_runtime::{MuxAccept, MuxCluster, MuxConfig, NodeHandle};
use irs_types::{ProcessId, Snapshot};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Seed base for the deterministic per-client retry jitter.
const CLIENT_SEED: u64 = 0x5EED_C11E;

/// How the replicas are being driven: one node thread per replica (the
/// historical shape), or the multiplexed socket runtime (one socket per
/// replica, `W` reactor shard threads for all of them). The observation
/// surface is identical either way.
#[derive(Debug)]
enum Backing {
    Threads {
        handles: Vec<NodeHandle>,
        threads: Vec<JoinHandle<SvcReplica>>,
    },
    Mux(MuxCluster<SvcReplica>),
}

/// A running KV-service deployment.
#[derive(Debug)]
pub struct SvcCluster {
    n: usize,
    backing: Backing,
    /// The shared observability handle, when the config carried one —
    /// callers scrape metrics or dump the flight recorder through it
    /// while the cluster runs (and after shutdown).
    obs: Option<Arc<irs_obs::Obs>>,
}

impl SvcCluster {
    /// Spawns `config.n` replicas, one thread each, over the given
    /// endpoints (`transports[i]` hosts replica `i`). Resilience is the
    /// largest consensus-compatible `t = ⌊(n−1)/2⌋`.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint count disagrees with `config.n`, or `n < 3`
    /// (a majority-based service needs to survive at least one crash).
    pub fn spawn<T>(transports: Vec<T>, config: SvcConfig) -> Self
    where
        T: Transport + 'static,
    {
        let n = config.n;
        let obs = config.obs.clone();
        assert!(n >= 3, "a replicated service needs n >= 3");
        assert_eq!(transports.len(), n, "one endpoint per replica");
        let handles: Vec<NodeHandle> = (0..n).map(|_| NodeHandle::new()).collect();
        let threads = transports
            .into_iter()
            .enumerate()
            .zip(&handles)
            .map(|((i, transport), handle)| {
                let replica = config.replica(ProcessId::new(i as u32));
                let handle = handle.clone();
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("irs-svc-{i}"))
                    .spawn(move || run_svc_node(replica, transport, config, handle))
                    .expect("spawn replica thread")
            })
            .collect();
        SvcCluster {
            n,
            backing: Backing::Threads { handles, threads },
            obs,
        }
    }

    /// An `n`-replica deployment over the in-memory mesh, with `clients`
    /// connected client endpoints.
    pub fn in_memory(
        n: usize,
        clients: usize,
        config: SvcConfig,
    ) -> (Self, Vec<SvcClient<MemTransport>>) {
        let mut mesh = MemNetwork::mesh(n + clients);
        let client_eps = mesh.split_off(n);
        let cluster = Self::spawn(mesh, config);
        (cluster, Self::wrap_clients(n, client_eps))
    }

    /// Like [`SvcCluster::in_memory`], with a fault-injecting link model on
    /// every *replica* endpoint (`model(p)` shapes what replica `p`
    /// receives; clients see clean links, which isolates the consensus
    /// plane as the thing under stress).
    pub fn with_link_models(
        n: usize,
        clients: usize,
        config: SvcConfig,
        mut model: impl FnMut(ProcessId) -> LinkModel,
    ) -> (Self, Vec<SvcClient<MemTransport>>) {
        let mut mesh = MemNetwork::mesh(n + clients);
        let client_eps = mesh.split_off(n);
        let mut faulty: Vec<FaultyLink<MemTransport>> = mesh
            .into_iter()
            .enumerate()
            .map(|(i, t)| FaultyLink::new(t, model(ProcessId::new(i as u32))))
            .collect();
        if let Some(obs) = &config.obs {
            for t in &mut faulty {
                t.attach_obs(obs.registry());
            }
        }
        let cluster = Self::spawn(faulty, config);
        (cluster, Self::wrap_clients(n, client_eps))
    }

    /// An `n`-replica deployment over real UDP sockets on localhost, with
    /// `clients` connected client sockets.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub fn udp(
        n: usize,
        clients: usize,
        config: SvcConfig,
    ) -> std::io::Result<(Self, Vec<SvcClient<UdpTransport>>)> {
        let mut mesh = UdpTransport::localhost_mesh(n + clients)?;
        let client_eps = mesh.split_off(n);
        if let Some(obs) = &config.obs {
            for t in &mut mesh {
                t.attach_obs(obs.registry());
            }
        }
        let cluster = Self::spawn(mesh, config);
        Ok((cluster, Self::wrap_clients(n, client_eps)))
    }

    /// An `n`-replica deployment on the multiplexed socket runtime: every
    /// replica and every client keeps its own real UDP socket, but the
    /// replicas are served by `workers` reactor shard threads (`0` = the
    /// machine's parallelism) and the whole client fleet by one more —
    /// where [`SvcCluster::udp`] spends one blocking thread per endpoint.
    /// This is the deployment shape that scales the service to large
    /// client fleets in one process.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding or readiness-registration error.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn mux_udp(
        n: usize,
        clients: usize,
        workers: usize,
        config: SvcConfig,
    ) -> std::io::Result<(Self, Vec<SvcClient<MuxEndpoint>>)> {
        assert!(n >= 3, "a replicated service needs n >= 3");
        let mut sockets: Vec<std::net::UdpSocket> = (0..n + clients)
            .map(|_| std::net::UdpSocket::bind(("127.0.0.1", 0)))
            .collect::<std::io::Result<_>>()?;
        let peer_addrs: Vec<std::net::SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<std::io::Result<_>>()?;
        let client_sockets = sockets.split_off(n);

        let replicas: Vec<SvcReplica> = (0..n)
            .map(|i| config.replica(ProcessId::new(i as u32)))
            .collect();
        let peers = config.peers;
        let accept: MuxAccept<crate::msg::SvcMsg> = Arc::new(move |me, from, to, payload| {
            accept_svc_frame_bytes(from, to, payload, me, n, peers)
        });
        let mux = MuxCluster::spawn_on_sockets_obs(
            replicas,
            sockets,
            peer_addrs.clone(),
            MuxConfig {
                tick: config.tick,
                workers,
            },
            accept,
            config.obs.clone(),
        )?;
        let client_eps = MuxNetwork::over_sockets(client_sockets, peer_addrs)?;
        let cluster = SvcCluster {
            n,
            backing: Backing::Mux(mux),
            obs: config.obs.clone(),
        };
        Ok((cluster, Self::wrap_clients(n, client_eps)))
    }

    fn wrap_clients<T: Transport>(n: usize, endpoints: Vec<T>) -> Vec<SvcClient<T>> {
        endpoints
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let id = ProcessId::new((n + i) as u32);
                SvcClient::new(id, n, t, CLIENT_SEED ^ (i as u64 + 1))
            })
            .collect()
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The shared observability handle, when the config carried one.
    pub fn obs(&self) -> Option<&Arc<irs_obs::Obs>> {
        self.obs.as_ref()
    }

    /// The latest published snapshot of a replica.
    pub fn snapshot(&self, pid: ProcessId) -> Snapshot {
        match &self.backing {
            Backing::Threads { handles, .. } => handles[pid.index()]
                .snapshot
                .lock()
                .expect("snapshot lock poisoned")
                .clone(),
            Backing::Mux(mux) => mux.snapshot(pid),
        }
    }

    /// The current leader output of a replica.
    pub fn leader_of(&self, pid: ProcessId) -> ProcessId {
        self.snapshot(pid).leader
    }

    /// Returns `Some(p)` when every non-crashed replica currently outputs
    /// the same non-crashed leader `p`.
    pub fn agreed_leader(&self) -> Option<ProcessId> {
        let mut agreed: Option<ProcessId> = None;
        for i in 0..self.n {
            let pid = ProcessId::new(i as u32);
            if self.is_crashed(pid) {
                continue;
            }
            let leader = self.leader_of(pid);
            match agreed {
                None => agreed = Some(leader),
                Some(l) if l == leader => {}
                Some(_) => return None,
            }
        }
        agreed.filter(|&l| !self.is_crashed(l))
    }

    /// Crash-stops a replica: it stops reacting to messages and timers.
    pub fn crash(&self, pid: ProcessId) {
        match &self.backing {
            Backing::Threads { handles, .. } => {
                handles[pid.index()].crashed.store(true, Ordering::SeqCst)
            }
            Backing::Mux(mux) => mux.crash(pid),
        }
    }

    /// Returns `true` if the replica was crashed via [`SvcCluster::crash`].
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        match &self.backing {
            Backing::Threads { handles, .. } => handles[pid.index()].crashed.load(Ordering::SeqCst),
            Backing::Mux(mux) => mux.is_crashed(pid),
        }
    }

    /// Stops every replica and returns the final states (stores included)
    /// in id order.
    pub fn shutdown(self) -> Vec<SvcReplica> {
        match self.backing {
            Backing::Threads {
                handles,
                mut threads,
            } => {
                for handle in &handles {
                    handle.stop.store(true, Ordering::SeqCst);
                }
                threads
                    .drain(..)
                    .map(|t| t.join().expect("replica thread panicked"))
                    .collect()
            }
            Backing::Mux(mux) => mux.shutdown(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    #[test]
    fn in_memory_service_applies_and_acks_puts() {
        let (cluster, mut clients) = SvcCluster::in_memory(3, 1, SvcConfig::new(3, 1));
        let client = &mut clients[0];
        let deadline = StdDuration::from_secs(20);
        let slot_a = client.put(b"a", b"1", deadline).expect("put a");
        let slot_b = client.put(b"b", b"2", deadline).expect("put b");
        assert!(slot_b > slot_a, "log slots grow: {slot_a} then {slot_b}");
        client.delete(b"a", deadline).expect("del a");
        let finals = cluster.shutdown();
        // The shutdown drain flushes in-flight Decides, so every replica
        // should have converged on the same state.
        for r in &finals {
            assert_eq!(r.store().get(b"b"), Some(b"2".as_slice()));
            assert_eq!(r.store().get(b"a"), None);
        }
        let digests: Vec<u64> = finals.iter().map(|r| r.store().digest()).collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replicas diverged: {digests:x?}"
        );
        assert_eq!(client.stats.acked, 3);
    }

    #[test]
    fn udp_service_applies_a_put_end_to_end() {
        let (cluster, mut clients) =
            SvcCluster::udp(3, 1, SvcConfig::new(3, 1)).expect("bind sockets");
        let slot = clients[0]
            .put(b"k", b"v", StdDuration::from_secs(30))
            .expect("put over UDP");
        let finals = cluster.shutdown();
        assert!(finals
            .iter()
            .any(|r| r.store().get(b"k") == Some(b"v".as_slice())));
        assert!(finals[0].log().decision(slot).is_some());
    }

    #[test]
    fn mux_udp_service_applies_a_put_end_to_end() {
        let (cluster, mut clients) =
            SvcCluster::mux_udp(3, 1, 2, SvcConfig::new(3, 1)).expect("bind sockets");
        let slot = clients[0]
            .put(b"k", b"v", StdDuration::from_secs(30))
            .expect("put over multiplexed UDP");
        let finals = cluster.shutdown();
        assert!(finals
            .iter()
            .any(|r| r.store().get(b"k") == Some(b"v".as_slice())));
        assert!(finals[0].log().decision(slot).is_some());
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn tiny_clusters_are_rejected() {
        let _ = SvcCluster::in_memory(2, 0, SvcConfig::new(2, 0));
    }
}
