//! `irs-svc` — a replicated key-value service on the Ω-driven log.
//!
//! This crate is the first layer of the stack an external user can actually
//! talk to. Everything below it is machinery from the paper's world:
//! `irs-omega` elects the leader (Theorem 3), `irs-consensus` turns the
//! leader into a totally ordered log (Theorem 5), `irs-net` moves frames
//! across links, `irs-runtime` drives the event loops. This crate closes
//! the loop the paper's introduction opens — *state-machine replication* —
//! by applying the decided log to a key-value store and serving clients.
//!
//! # Architecture
//!
//! ```text
//!  SvcClient ──Request──▶ SvcReplica (leader)   ─┐
//!      ▲                    ReplicatedLog<…,Command>  consensus traffic
//!      └──Applied/Redirect──  KvStore ◀─ apply ─┘   (LogMsg frames)
//! ```
//!
//! * [`SvcReplica`] wraps a [`irs_consensus::ReplicatedLog`] over
//!   [`irs_omega::OmegaProcess`] whose slots decide
//!   [`irs_consensus::CommandBatch`]es (the leader drains up to
//!   `batch_max` pending commands per slot, with up to `pipeline_depth`
//!   slots in flight — `SvcConfig::with_batching`), plus the [`KvStore`]
//!   apply loop: batches apply atomically in slot order and one decision
//!   may ack many clients. Every `snapshot_interval` applied slots the
//!   replica exports its store and truncates the log behind the snapshot,
//!   so memory stays bounded under sustained load and a lagging replica
//!   converges via snapshot install. It is an ordinary sans-IO
//!   [`irs_types::Protocol`], so it runs under any driver.
//! * [`run_svc_node`] drives one replica over any
//!   [`irs_net::Transport`] endpoint — the same event loop as
//!   [`irs_runtime::run_node`], with a frame-acceptance policy that also
//!   admits client frames from endpoints outside the replica group.
//! * [`SvcCluster`] deploys `n` replicas (thread-per-node) over the
//!   in-memory mesh, UDP sockets, or fault-injected links, and hands back
//!   connected [`SvcClient`]s; `examples/kv_cluster.rs` is the
//!   process-per-node UDP deployment.
//! * [`SvcClient`] is the client path: leader discovery by probing,
//!   redirect-on-`NotLeader` (the [`SvcReply::Redirect`] protocol), and
//!   seeded retry/backoff so a leader crash mid-request heals by itself.
//! * [`loadgen`] is the load harness: closed-loop and open-loop clients
//!   with log2-bucket latency histograms ([`irs_sim::Histogram`]), feeding
//!   the E12 experiment family (ops/s, p50/p99 per transport backend).
//!
//! # Client redirect protocol
//!
//! A client sends [`SvcMsg::Request`] to the replica it believes leads.
//! The replica answers [`SvcReply::Applied`] once the command is decided
//! *and applied* at that replica (so an ack implies the write is in the
//! decided prefix), or [`SvcReply::Redirect`] naming its current Ω leader
//! output when it does not consider itself the leader. On silence the
//! client retries with seeded exponential backoff, rotating to another
//! replica — that is what rides out a leader going dark (the B1931+24
//! regime) or crashing. Commands carry a `(client, seq)` header; replicas
//! deduplicate retries by that header, so a retried command applies
//! exactly once no matter how many copies reach the log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod cluster;
mod command;
mod durability;
pub mod loadgen;
mod msg;
mod node;
mod replica;
mod store;

pub use client::{ClientError, ClientStats, SvcClient};
pub use cluster::SvcCluster;
pub use command::{KvOp, KvWrite};
pub use durability::{Durability, Recovered};
pub use irs_consensus::Command;
pub use irs_wal::FsyncPolicy;
pub use msg::{ReadTier, SvcMsg, SvcReply};
pub use node::{accept_svc_frame, run_svc_node, SvcConfig};
pub use replica::{SvcReplica, TIMER_LEASE};
pub use store::KvStore;
