//! The key-value command encoding: what a log entry's [`Command`] bytes
//! mean to the service.
//!
//! A [`KvWrite`] is a `(client, seq)` header plus a [`KvOp`]. The header is
//! the exactly-once handle: replicas apply entries in log order and skip an
//! entry whose `seq` is not greater than the client's last applied one, so
//! a client retry that lands in the log twice mutates the store once. The
//! encoding is the same hand-rolled style as the wire layer (LE ints,
//! length-prefixed bytes) and the decoder is total — a command is untrusted
//! input the moment it crosses a socket.

use irs_consensus::{Command, MAX_COMMAND_LEN};

const TAG_PUT: u8 = 0;
const TAG_DEL: u8 = 1;
/// Header (client u64 + seq u64) plus op tag.
const HEADER_LEN: usize = 8 + 8 + 1;

/// Longest key the service accepts.
pub const MAX_KEY_LEN: usize = 128;
/// Longest value the service accepts (bounded so a whole encoded write fits
/// [`MAX_COMMAND_LEN`] with room to spare).
pub const MAX_VALUE_LEN: usize = MAX_COMMAND_LEN - HEADER_LEN - MAX_KEY_LEN - 8;

/// One key-value operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum KvOp {
    /// Bind `key` to `value`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Del {
        /// The key.
        key: Vec<u8>,
    },
}

impl KvOp {
    /// The key the operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            KvOp::Put { key, .. } | KvOp::Del { key } => key,
        }
    }
}

/// A client write: the unit the replicated log orders and the store applies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KvWrite {
    /// The issuing client's id (its transport endpoint id).
    pub client: u64,
    /// The client's sequence number (strictly increasing per client).
    pub seq: u64,
    /// The operation.
    pub op: KvOp,
}

impl KvWrite {
    /// Encodes the write into a log [`Command`].
    ///
    /// # Panics
    ///
    /// Panics if the key or value exceeds [`MAX_KEY_LEN`] /
    /// [`MAX_VALUE_LEN`] — the client library checks at the API boundary.
    pub fn encode(&self) -> Command {
        let mut buf = Vec::with_capacity(HEADER_LEN + 8 + self.op.key().len());
        buf.extend_from_slice(&self.client.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        let put_bytes = |buf: &mut Vec<u8>, bytes: &[u8]| {
            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            buf.extend_from_slice(bytes);
        };
        match &self.op {
            KvOp::Put { key, value } => {
                assert!(key.len() <= MAX_KEY_LEN, "key too long");
                assert!(value.len() <= MAX_VALUE_LEN, "value too long");
                buf.push(TAG_PUT);
                put_bytes(&mut buf, key);
                put_bytes(&mut buf, value);
            }
            KvOp::Del { key } => {
                assert!(key.len() <= MAX_KEY_LEN, "key too long");
                buf.push(TAG_DEL);
                put_bytes(&mut buf, key);
            }
        }
        Command::new(buf)
    }

    /// Decodes a log command back into a write. Returns `None` on any
    /// malformed input (never panics).
    pub fn decode(cmd: &Command) -> Option<KvWrite> {
        let bytes = cmd.bytes();
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = bytes.get(*pos..*pos + n)?;
            *pos += n;
            Some(slice)
        };
        let u64_at = |pos: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let len_bytes = |pos: &mut usize, cap: usize| -> Option<Vec<u8>> {
            let len = u32::from_le_bytes(take(pos, 4)?.try_into().ok()?) as usize;
            if len > cap {
                return None;
            }
            Some(take(pos, len)?.to_vec())
        };
        let client = u64_at(&mut pos)?;
        let seq = u64_at(&mut pos)?;
        let tag = *take(&mut pos, 1)?.first()?;
        let op = match tag {
            TAG_PUT => KvOp::Put {
                key: len_bytes(&mut pos, MAX_KEY_LEN)?,
                value: len_bytes(&mut pos, MAX_VALUE_LEN)?,
            },
            TAG_DEL => KvOp::Del {
                key: len_bytes(&mut pos, MAX_KEY_LEN)?,
            },
            _ => return None,
        };
        if pos != bytes.len() {
            return None; // trailing bytes: not one of ours
        }
        Some(KvWrite { client, seq, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn writes_roundtrip() {
        let put = KvWrite {
            client: 9,
            seq: 4,
            op: KvOp::Put {
                key: b"k1".to_vec(),
                value: vec![0, 1, 2, 255],
            },
        };
        assert_eq!(KvWrite::decode(&put.encode()), Some(put.clone()));
        let del = KvWrite {
            client: 1,
            seq: u64::MAX,
            op: KvOp::Del { key: vec![] },
        };
        assert_eq!(KvWrite::decode(&del.encode()), Some(del));
        assert_eq!(put.op.key(), b"k1");
    }

    #[test]
    fn garbage_commands_decode_to_none() {
        assert_eq!(KvWrite::decode(&Command::default()), None);
        assert_eq!(KvWrite::decode(&Command::new(vec![1u8; 10])), None);
        // A valid write with trailing junk is rejected.
        let w = KvWrite {
            client: 0,
            seq: 0,
            op: KvOp::Del { key: b"k".to_vec() },
        };
        let mut bytes = w.encode().bytes().to_vec();
        bytes.push(0);
        assert_eq!(KvWrite::decode(&Command::new(bytes)), None);
        // An impossible embedded length is rejected.
        let mut bad = w.encode().bytes().to_vec();
        let key_len_at = 8 + 8 + 1;
        bad[key_len_at..key_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(KvWrite::decode(&Command::new(bad)), None);
    }

    proptest! {
        #[test]
        fn random_writes_roundtrip(
            client in 0u64..1_000,
            seq in 0u64..1_000_000,
            key in proptest::collection::vec(0u8..255, 0..64),
            value in proptest::collection::vec(0u8..255, 0..128),
            del in 0u8..2,
        ) {
            let op = if del == 1 {
                KvOp::Del { key: key.clone() }
            } else {
                KvOp::Put { key: key.clone(), value: value.clone() }
            };
            let w = KvWrite { client, seq, op };
            prop_assert_eq!(KvWrite::decode(&w.encode()), Some(w));
        }

        #[test]
        fn random_bytes_never_panic_the_decoder(
            bytes in proptest::collection::vec(0u8..255, 0..80),
        ) {
            let _ = KvWrite::decode(&Command::new(bytes));
        }
    }
}
