//! The service's wire messages: replica-to-replica log traffic plus the
//! client request/reply protocol, all in one [`Wire`]-encodable enum so a
//! single transport endpoint carries both planes.
//!
//! Tags live in the `0x20..` range — disjoint from the Ω (`0x00..`) and
//! consensus (`0x10..`/`0x18..`) ranges, so cross-kind frames die in the
//! decoder as link noise (see `irs_net::wire_consensus`).

use irs_consensus::{Command, LogMsg};
use irs_net::wire::{put_u32, put_u64, Wire, WireError, WireReader};
use irs_omega::OmegaMsg;
use irs_types::ProcessId;

/// The log-message type replicas exchange: `Command`-valued slots over the
/// Figure 3 oracle.
pub type ReplicaLogMsg = LogMsg<OmegaMsg, Command>;

const TAG_SVC_LOG: u8 = 0x20;
const TAG_SVC_REQUEST: u8 = 0x21;
const TAG_SVC_REPLY_APPLIED: u8 = 0x22;
const TAG_SVC_REPLY_REDIRECT: u8 = 0x23;

/// A reply from a replica to a client.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SvcReply {
    /// The write is decided and applied at the answering replica.
    Applied {
        /// The client the write belongs to.
        client: u64,
        /// The client's sequence number.
        seq: u64,
        /// The log slot the write was decided in.
        slot: u64,
    },
    /// The answering replica is not the leader; try `leader`.
    Redirect {
        /// The client the request belonged to.
        client: u64,
        /// The client's sequence number.
        seq: u64,
        /// The replica's current Ω leader output.
        leader: ProcessId,
    },
}

/// One frame payload of the service plane.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SvcMsg {
    /// Replica-to-replica traffic of the replicated log (oracle gossip,
    /// ballots, forwards, catch-up).
    Log(ReplicaLogMsg),
    /// A client's write request (an encoded [`crate::KvWrite`]).
    Request {
        /// The encoded command.
        cmd: Command,
    },
    /// A replica's reply to a client.
    Reply(SvcReply),
}

impl Wire for SvcMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SvcMsg::Log(m) => {
                buf.push(TAG_SVC_LOG);
                m.encode(buf);
            }
            SvcMsg::Request { cmd } => {
                buf.push(TAG_SVC_REQUEST);
                cmd.encode(buf);
            }
            SvcMsg::Reply(SvcReply::Applied { client, seq, slot }) => {
                buf.push(TAG_SVC_REPLY_APPLIED);
                put_u64(buf, *client);
                put_u64(buf, *seq);
                put_u64(buf, *slot);
            }
            SvcMsg::Reply(SvcReply::Redirect {
                client,
                seq,
                leader,
            }) => {
                buf.push(TAG_SVC_REPLY_REDIRECT);
                put_u64(buf, *client);
                put_u64(buf, *seq);
                put_u32(buf, leader.as_u32());
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_SVC_LOG => Ok(SvcMsg::Log(ReplicaLogMsg::decode(r)?)),
            TAG_SVC_REQUEST => Ok(SvcMsg::Request {
                cmd: Command::decode(r)?,
            }),
            TAG_SVC_REPLY_APPLIED => Ok(SvcMsg::Reply(SvcReply::Applied {
                client: r.u64()?,
                seq: r.u64()?,
                slot: r.u64()?,
            })),
            TAG_SVC_REPLY_REDIRECT => Ok(SvcMsg::Reply(SvcReply::Redirect {
                client: r.u64()?,
                seq: r.u64()?,
                leader: ProcessId::new(r.u32()?),
            })),
            other => Err(WireError::BadTag(other)),
        }
    }

    fn valid_for(&self, n: usize) -> bool {
        match self {
            SvcMsg::Log(m) => m.valid_for(n),
            // A request's command is validated (parsed) by the replica; a
            // redirect must name a replica of this deployment.
            SvcMsg::Request { .. } => true,
            SvcMsg::Reply(SvcReply::Redirect { leader, .. }) => leader.index() < n,
            SvcMsg::Reply(SvcReply::Applied { .. }) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvOp, KvWrite};
    use irs_net::wire::decode_payload;

    fn roundtrip(msg: &SvcMsg) -> SvcMsg {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        decode_payload(&buf).expect("roundtrip decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let cmd = KvWrite {
            client: 8,
            seq: 3,
            op: KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        }
        .encode();
        for msg in [
            SvcMsg::Log(LogMsg::Catchup { from: 7 }),
            SvcMsg::Log(LogMsg::Forward { v: cmd.clone() }),
            SvcMsg::Log(LogMsg::Slot {
                slot: 4,
                msg: irs_consensus::PaxosMsg::Decide {
                    v: irs_consensus::Batch::new(vec![cmd.clone(), cmd.clone()]),
                },
            }),
            SvcMsg::Log(LogMsg::SnapshotOffer { upto: 9 }),
            SvcMsg::Log(LogMsg::SnapshotInstall {
                upto: 9,
                state: vec![1u8, 2, 3].into(),
            }),
            SvcMsg::Request { cmd },
            SvcMsg::Reply(SvcReply::Applied {
                client: 8,
                seq: 3,
                slot: 11,
            }),
            SvcMsg::Reply(SvcReply::Redirect {
                client: 8,
                seq: 3,
                leader: ProcessId::new(2),
            }),
        ] {
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn cross_kind_frames_are_rejected() {
        let mut omega = Vec::new();
        OmegaMsg::Alive {
            rn: irs_types::RoundNum::new(1),
            susp: irs_omega::SuspVector::new(4),
        }
        .encode(&mut omega);
        assert!(decode_payload::<SvcMsg>(&omega).is_err());
        let mut svc = Vec::new();
        SvcMsg::Log(LogMsg::Catchup { from: 0 }).encode(&mut svc);
        assert!(decode_payload::<OmegaMsg>(&svc).is_err());
        assert!(decode_payload::<ReplicaLogMsg>(&svc).is_err());
    }

    #[test]
    fn valid_for_checks_embedded_ids() {
        let redirect = SvcMsg::Reply(SvcReply::Redirect {
            client: 1,
            seq: 1,
            leader: ProcessId::new(7),
        });
        assert!(redirect.valid_for(8));
        assert!(!redirect.valid_for(4));
    }
}
