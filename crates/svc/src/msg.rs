//! The service's wire messages: replica-to-replica log traffic plus the
//! client request/reply protocol, all in one [`Wire`]-encodable enum so a
//! single transport endpoint carries both planes.
//!
//! Tags live in the `0x20..=0x27` range — disjoint from the Ω (`0x00..`)
//! and consensus (`0x10..`/`0x18..`/`0x28..`) ranges, so cross-kind frames
//! die in the decoder as link noise (see `irs_net::wire_consensus`):
//! `0x20` log, `0x21` request, `0x22` applied, `0x23` redirect, `0x24`
//! read, `0x25` value, `0x26` lease probe, `0x27` lease ack.

use crate::command::{MAX_KEY_LEN, MAX_VALUE_LEN};
use irs_consensus::{Command, LogMsg};
use irs_net::wire::{put_u32, put_u64, Wire, WireError, WireReader};
use irs_omega::OmegaMsg;
use irs_types::ProcessId;

/// The log-message type replicas exchange: `Command`-valued slots over the
/// Figure 3 oracle.
pub type ReplicaLogMsg = LogMsg<OmegaMsg, Command>;

const TAG_SVC_LOG: u8 = 0x20;
const TAG_SVC_REQUEST: u8 = 0x21;
const TAG_SVC_REPLY_APPLIED: u8 = 0x22;
const TAG_SVC_REPLY_REDIRECT: u8 = 0x23;
const TAG_SVC_READ: u8 = 0x24;
const TAG_SVC_REPLY_VALUE: u8 = 0x25;
const TAG_SVC_LEASE_PROBE: u8 = 0x26;
const TAG_SVC_LEASE_ACK: u8 = 0x27;

/// The consistency level a client selects per read.
///
/// The three tiers trade latency for guarantee strength — the stable-reign
/// exploitation the paper's Ω construction pays for:
///
/// * [`ReadTier::Lease`] — linearizable, served by the leader from local
///   state while its quorum-refreshed lease is live; zero messages on the
///   read path. Falls back to a read-index round when the lease is
///   uncertain.
/// * [`ReadTier::ReadIndex`] — linearizable, always: the leader confirms
///   its leadership with a quorum round *started after the read arrived*
///   and waits for the apply frontier to cover the read index.
/// * [`ReadTier::Stale`] — sequentially consistent per replica: any
///   replica answers from its applied prefix immediately. Staleness is
///   bounded by the apply frontier — the answer reflects a decided prefix,
///   never an unacked in-flight write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadTier {
    /// Leader-local read under a live quorum lease.
    Lease,
    /// Quorum-confirmed read (leadership check + frontier wait).
    ReadIndex,
    /// Any replica's applied prefix, no coordination.
    Stale,
}

impl ReadTier {
    const fn tag(self) -> u8 {
        match self {
            ReadTier::Lease => 0,
            ReadTier::ReadIndex => 1,
            ReadTier::Stale => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(ReadTier::Lease),
            1 => Ok(ReadTier::ReadIndex),
            2 => Ok(ReadTier::Stale),
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// A reply from a replica to a client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SvcReply {
    /// The write is decided and applied at the answering replica.
    Applied {
        /// The client the write belongs to.
        client: u64,
        /// The client's sequence number.
        seq: u64,
        /// The log slot the write was decided in.
        slot: u64,
    },
    /// The answering replica is not the leader; try `leader`.
    Redirect {
        /// The client the request belonged to.
        client: u64,
        /// The client's sequence number.
        seq: u64,
        /// The replica's current Ω leader output.
        leader: ProcessId,
    },
    /// The answer to a [`SvcMsg::Read`].
    Value {
        /// The client the read belongs to.
        client: u64,
        /// The client's read id (its sequence number).
        rid: u64,
        /// The bound value, or `None` when the key is unbound.
        value: Option<Vec<u8>>,
        /// The answering replica's apply frontier when it served the read
        /// — the staleness witness: the answer reflects exactly the
        /// decided prefix below this slot.
        frontier: u64,
    },
}

/// One frame payload of the service plane.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SvcMsg {
    /// Replica-to-replica traffic of the replicated log (oracle gossip,
    /// ballots, forwards, catch-up).
    Log(ReplicaLogMsg),
    /// A client's write request (an encoded [`crate::KvWrite`]).
    Request {
        /// The encoded command.
        cmd: Command,
    },
    /// A replica's reply to a client.
    Reply(SvcReply),
    /// A client's read request. Reads are never logged — they are served
    /// from applied state under the tier's guarantee.
    Read {
        /// The issuing client's id.
        client: u64,
        /// The client's read id (drawn from its sequence space).
        rid: u64,
        /// The key to read.
        key: Vec<u8>,
        /// The consistency tier the client selected.
        tier: ReadTier,
    },
    /// Leader → replicas: one round of the lease/read-index probe. A
    /// quorum of granted acks for round `rid` refreshes the leader's
    /// lease and confirms its leadership for queued read-index reads.
    LeaseProbe {
        /// The probe round (monotone per leader incarnation).
        rid: u64,
    },
    /// Replica → leader: the answer to a [`SvcMsg::LeaseProbe`].
    /// `granted` is true only when the answering replica's Ω output names
    /// the probing leader and no unexpired grant to a different leader is
    /// outstanding.
    LeaseAck {
        /// The probe round being answered.
        rid: u64,
        /// Whether the grant window was (re)opened for the prober.
        granted: bool,
    },
}

impl Wire for SvcMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SvcMsg::Log(m) => {
                buf.push(TAG_SVC_LOG);
                m.encode(buf);
            }
            SvcMsg::Request { cmd } => {
                buf.push(TAG_SVC_REQUEST);
                cmd.encode(buf);
            }
            SvcMsg::Reply(SvcReply::Applied { client, seq, slot }) => {
                buf.push(TAG_SVC_REPLY_APPLIED);
                put_u64(buf, *client);
                put_u64(buf, *seq);
                put_u64(buf, *slot);
            }
            SvcMsg::Reply(SvcReply::Redirect {
                client,
                seq,
                leader,
            }) => {
                buf.push(TAG_SVC_REPLY_REDIRECT);
                put_u64(buf, *client);
                put_u64(buf, *seq);
                put_u32(buf, leader.as_u32());
            }
            SvcMsg::Reply(SvcReply::Value {
                client,
                rid,
                value,
                frontier,
            }) => {
                buf.push(TAG_SVC_REPLY_VALUE);
                put_u64(buf, *client);
                put_u64(buf, *rid);
                put_u64(buf, *frontier);
                match value {
                    Some(v) => {
                        buf.push(1);
                        put_u32(buf, v.len() as u32);
                        buf.extend_from_slice(v);
                    }
                    None => buf.push(0),
                }
            }
            SvcMsg::Read {
                client,
                rid,
                key,
                tier,
            } => {
                buf.push(TAG_SVC_READ);
                put_u64(buf, *client);
                put_u64(buf, *rid);
                buf.push(tier.tag());
                put_u32(buf, key.len() as u32);
                buf.extend_from_slice(key);
            }
            SvcMsg::LeaseProbe { rid } => {
                buf.push(TAG_SVC_LEASE_PROBE);
                put_u64(buf, *rid);
            }
            SvcMsg::LeaseAck { rid, granted } => {
                buf.push(TAG_SVC_LEASE_ACK);
                put_u64(buf, *rid);
                buf.push(u8::from(*granted));
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_SVC_LOG => Ok(SvcMsg::Log(ReplicaLogMsg::decode(r)?)),
            TAG_SVC_REQUEST => Ok(SvcMsg::Request {
                cmd: Command::decode(r)?,
            }),
            TAG_SVC_REPLY_APPLIED => Ok(SvcMsg::Reply(SvcReply::Applied {
                client: r.u64()?,
                seq: r.u64()?,
                slot: r.u64()?,
            })),
            TAG_SVC_REPLY_REDIRECT => Ok(SvcMsg::Reply(SvcReply::Redirect {
                client: r.u64()?,
                seq: r.u64()?,
                leader: ProcessId::new(r.u32()?),
            })),
            TAG_SVC_REPLY_VALUE => {
                let client = r.u64()?;
                let rid = r.u64()?;
                let frontier = r.u64()?;
                let value = match r.u8()? {
                    0 => None,
                    1 => {
                        let len = r.u32()? as usize;
                        if len > MAX_VALUE_LEN {
                            return Err(WireError::BadLength(len));
                        }
                        Some(r.take(len)?.to_vec())
                    }
                    other => return Err(WireError::BadTag(other)),
                };
                Ok(SvcMsg::Reply(SvcReply::Value {
                    client,
                    rid,
                    value,
                    frontier,
                }))
            }
            TAG_SVC_READ => {
                let client = r.u64()?;
                let rid = r.u64()?;
                let tier = ReadTier::from_tag(r.u8()?)?;
                let len = r.u32()? as usize;
                if len > MAX_KEY_LEN {
                    return Err(WireError::BadLength(len));
                }
                Ok(SvcMsg::Read {
                    client,
                    rid,
                    key: r.take(len)?.to_vec(),
                    tier,
                })
            }
            TAG_SVC_LEASE_PROBE => Ok(SvcMsg::LeaseProbe { rid: r.u64()? }),
            TAG_SVC_LEASE_ACK => {
                let rid = r.u64()?;
                let granted = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(WireError::BadTag(other)),
                };
                Ok(SvcMsg::LeaseAck { rid, granted })
            }
            other => Err(WireError::BadTag(other)),
        }
    }

    fn valid_for(&self, n: usize) -> bool {
        match self {
            SvcMsg::Log(m) => m.valid_for(n),
            // A request's command is validated (parsed) by the replica; a
            // redirect must name a replica of this deployment.
            SvcMsg::Request { .. } => true,
            SvcMsg::Reply(SvcReply::Redirect { leader, .. }) => leader.index() < n,
            SvcMsg::Reply(SvcReply::Applied { .. }) => true,
            SvcMsg::Reply(SvcReply::Value { value, .. }) => {
                value.as_ref().is_none_or(|v| v.len() <= MAX_VALUE_LEN)
            }
            SvcMsg::Read { key, .. } => key.len() <= MAX_KEY_LEN,
            SvcMsg::LeaseProbe { .. } | SvcMsg::LeaseAck { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvOp, KvWrite};
    use irs_net::wire::decode_payload;

    fn roundtrip(msg: &SvcMsg) -> SvcMsg {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        decode_payload(&buf).expect("roundtrip decode")
    }

    #[test]
    fn every_variant_roundtrips() {
        let cmd = KvWrite {
            client: 8,
            seq: 3,
            op: KvOp::Put {
                key: b"k".to_vec(),
                value: b"v".to_vec(),
            },
        }
        .encode();
        for msg in [
            SvcMsg::Log(LogMsg::Catchup { from: 7 }),
            SvcMsg::Log(LogMsg::Forward { v: cmd.clone() }),
            SvcMsg::Log(LogMsg::Slot {
                slot: 4,
                msg: irs_consensus::PaxosMsg::Decide {
                    v: irs_consensus::Batch::new(vec![cmd.clone(), cmd.clone()]),
                },
            }),
            SvcMsg::Log(LogMsg::SnapshotOffer { upto: 9 }),
            SvcMsg::Log(LogMsg::SnapshotInstall {
                upto: 9,
                state: vec![1u8, 2, 3].into(),
            }),
            SvcMsg::Request { cmd },
            SvcMsg::Reply(SvcReply::Applied {
                client: 8,
                seq: 3,
                slot: 11,
            }),
            SvcMsg::Reply(SvcReply::Redirect {
                client: 8,
                seq: 3,
                leader: ProcessId::new(2),
            }),
            SvcMsg::Reply(SvcReply::Value {
                client: 8,
                rid: 4,
                value: Some(b"v".to_vec()),
                frontier: 17,
            }),
            SvcMsg::Reply(SvcReply::Value {
                client: 8,
                rid: 5,
                value: None,
                frontier: 0,
            }),
            SvcMsg::Read {
                client: 8,
                rid: 6,
                key: b"k".to_vec(),
                tier: ReadTier::Lease,
            },
            SvcMsg::Read {
                client: 8,
                rid: 7,
                key: vec![],
                tier: ReadTier::ReadIndex,
            },
            SvcMsg::Read {
                client: 8,
                rid: 8,
                key: b"kk".to_vec(),
                tier: ReadTier::Stale,
            },
            SvcMsg::LeaseProbe { rid: 9 },
            SvcMsg::LeaseAck {
                rid: 9,
                granted: true,
            },
            SvcMsg::LeaseAck {
                rid: 10,
                granted: false,
            },
        ] {
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    /// The read-plane decoders bound untrusted lengths and reject
    /// out-of-range tier/flag bytes instead of guessing.
    #[test]
    fn read_plane_decoders_reject_malformed_frames() {
        // A Read whose declared key length exceeds the service cap.
        let mut buf = Vec::new();
        SvcMsg::Read {
            client: 1,
            rid: 1,
            key: vec![b'k'; 4],
            tier: ReadTier::Lease,
        }
        .encode(&mut buf);
        let key_len_at = 1 + 8 + 8 + 1;
        buf[key_len_at..key_len_at + 4]
            .copy_from_slice(&(crate::command::MAX_KEY_LEN as u32 + 1).to_le_bytes());
        assert!(decode_payload::<SvcMsg>(&buf).is_err());
        // An unknown tier tag.
        let mut buf = Vec::new();
        SvcMsg::Read {
            client: 1,
            rid: 1,
            key: vec![],
            tier: ReadTier::Stale,
        }
        .encode(&mut buf);
        buf[1 + 8 + 8] = 3;
        assert!(decode_payload::<SvcMsg>(&buf).is_err());
        // A lease ack whose granted flag is neither 0 nor 1.
        let mut buf = Vec::new();
        SvcMsg::LeaseAck {
            rid: 1,
            granted: true,
        }
        .encode(&mut buf);
        *buf.last_mut().unwrap() = 2;
        assert!(decode_payload::<SvcMsg>(&buf).is_err());
        // An oversized declared value length in a Value reply.
        let mut buf = Vec::new();
        SvcMsg::Reply(SvcReply::Value {
            client: 1,
            rid: 1,
            value: Some(vec![0u8; 4]),
            frontier: 0,
        })
        .encode(&mut buf);
        let value_len_at = 1 + 8 + 8 + 8 + 1;
        buf[value_len_at..value_len_at + 4]
            .copy_from_slice(&(crate::command::MAX_VALUE_LEN as u32 + 1).to_le_bytes());
        assert!(decode_payload::<SvcMsg>(&buf).is_err());
    }

    /// Oversized keys and values fail `valid_for` even when hand-built
    /// (the frame-acceptance policy runs it on every decoded frame).
    #[test]
    fn valid_for_bounds_read_plane_lengths() {
        let long_key = SvcMsg::Read {
            client: 1,
            rid: 1,
            key: vec![0u8; crate::command::MAX_KEY_LEN + 1],
            tier: ReadTier::Lease,
        };
        assert!(!long_key.valid_for(3));
        let long_value = SvcMsg::Reply(SvcReply::Value {
            client: 1,
            rid: 1,
            value: Some(vec![0u8; crate::command::MAX_VALUE_LEN + 1]),
            frontier: 0,
        });
        assert!(!long_value.valid_for(3));
        assert!(SvcMsg::LeaseProbe { rid: 1 }.valid_for(3));
    }

    #[test]
    fn cross_kind_frames_are_rejected() {
        let mut omega = Vec::new();
        OmegaMsg::Alive {
            rn: irs_types::RoundNum::new(1),
            susp: irs_omega::SuspVector::new(4),
        }
        .encode(&mut omega);
        assert!(decode_payload::<SvcMsg>(&omega).is_err());
        let mut svc = Vec::new();
        SvcMsg::Log(LogMsg::Catchup { from: 0 }).encode(&mut svc);
        assert!(decode_payload::<OmegaMsg>(&svc).is_err());
        assert!(decode_payload::<ReplicaLogMsg>(&svc).is_err());
    }

    #[test]
    fn valid_for_checks_embedded_ids() {
        let redirect = SvcMsg::Reply(SvcReply::Redirect {
            client: 1,
            seq: 1,
            leader: ProcessId::new(7),
        });
        assert!(redirect.valid_for(8));
        assert!(!redirect.valid_for(4));
    }
}
