//! Crash-restart durability for one replica: WAL + snapshot files.
//!
//! [`Durability`] owns a replica's on-disk state — an [`irs_wal::Wal`] of
//! accepted ballots and decided slots plus an atomically written snapshot
//! file — and translates between the log's typed
//! [`LogEvent`]s and the WAL's byte-level records. The contract with
//! [`crate::SvcReplica`] is *persist-before-send*: the replica drains the
//! log's durability events and commits them here at the end of every
//! message/timer handler, before the runtime releases the handler's
//! outbound frames. A crash at any point then loses at most messages that
//! were never sent, so a restarted acceptor still honours every promise a
//! peer may have observed.
//!
//! On snapshot (interval compaction or a peer-served install) the WAL is
//! rotated: the snapshot blob is written first (tmp + rename), then the
//! log is rewritten to a [`WalRecord::SnapshotMark`] plus the live tail —
//! retained decisions and undecided acceptances — so recovery never
//! replays what the snapshot already covers and the WAL's size tracks the
//! live window, not history.

use irs_consensus::{Ballot, Batch, Command, LogEvent};
use irs_net::wire::decode_payload;
use irs_net::Wire;
use irs_wal::{FsyncPolicy, Wal, WalRecord, WAL_FILE};
use std::io;
use std::path::{Path, PathBuf};

/// The typed result of replaying one replica's data directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The durable snapshot, if one was completely written: `(upto, blob)`
    /// where the blob is a [`crate::KvStore::export`] covering all slots
    /// below `upto`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Decided slots replayed from the WAL's valid prefix, in append order.
    pub decisions: Vec<(u64, Batch<Command>)>,
    /// Accepted `(slot, ballot, batch)` acceptor states, in append order
    /// (later acceptances for a slot supersede earlier ones).
    pub accepted: Vec<(u64, Ballot, Batch<Command>)>,
}

/// One replica's durable state: the WAL plus its data directory.
#[derive(Debug)]
pub struct Durability {
    wal: Wal,
    dir: PathBuf,
}

fn batch_bytes(batch: &Batch<Command>) -> Vec<u8> {
    let mut buf = Vec::new();
    batch.encode(&mut buf);
    buf
}

impl Durability {
    /// Opens (creating if absent) the data directory `dir`, replays the
    /// snapshot file and the WAL's valid prefix, and returns the typed
    /// recovered state alongside the writable WAL. A torn WAL tail is
    /// truncated in place; a missing or corrupt snapshot file reads as
    /// absent. A WAL record whose batch bytes fail to decode is dropped
    /// (its frame checksum passed, so this only guards against foreign
    /// files, not torn writes).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or opening the
    /// WAL file.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<(Self, Recovered)> {
        std::fs::create_dir_all(dir)?;
        let snapshot = irs_wal::read_snapshot(dir);
        let (wal, records) = Wal::open(dir.join(WAL_FILE), policy)?;
        let mut recovered = Recovered {
            snapshot,
            ..Recovered::default()
        };
        for rec in records {
            match rec {
                WalRecord::Accept {
                    slot,
                    ballot,
                    batch,
                } => {
                    if let Ok(batch) = decode_payload::<Batch<Command>>(&batch) {
                        recovered.accepted.push((slot, ballot, batch));
                    }
                }
                WalRecord::Decide { slot, batch } => {
                    if let Ok(batch) = decode_payload::<Batch<Command>>(&batch) {
                        recovered.decisions.push((slot, batch));
                    }
                }
                // Rotation seeds start with a mark; recovery takes the
                // floor from the snapshot file itself.
                WalRecord::SnapshotMark { .. } => {}
            }
        }
        Ok((
            Durability {
                wal,
                dir: dir.to_path_buf(),
            },
            recovered,
        ))
    }

    /// Appends one handler round's durability events and commits them as a
    /// single group (one write, at most one fsync per the policy).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or fsync.
    pub fn append_events(&mut self, events: &[LogEvent<Command>]) -> io::Result<()> {
        if events.is_empty() {
            return Ok(());
        }
        for ev in events {
            let rec = match ev {
                LogEvent::Accepted {
                    slot,
                    ballot,
                    value,
                } => WalRecord::Accept {
                    slot: *slot,
                    ballot: *ballot,
                    batch: batch_bytes(value),
                },
                LogEvent::Decided { slot, value } => WalRecord::Decide {
                    slot: *slot,
                    batch: batch_bytes(value),
                },
            };
            self.wal.append(&rec);
        }
        self.wal.commit()
    }

    /// Persists a snapshot at `upto` and rotates the WAL down to the live
    /// tail: the retained decisions and undecided acceptances the caller
    /// passes (everything else is covered by the blob). The snapshot file
    /// lands first — a crash between the two leaves a WAL that merely
    /// over-replays slots the snapshot already covers, which recovery
    /// filters out.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from either file.
    pub fn install_snapshot<'a>(
        &mut self,
        upto: u64,
        blob: &[u8],
        decisions: impl IntoIterator<Item = (u64, &'a Batch<Command>)>,
        accepted: impl IntoIterator<Item = (u64, Ballot, &'a Batch<Command>)>,
    ) -> io::Result<()> {
        irs_wal::write_snapshot(&self.dir, upto, blob)?;
        let mut seed = vec![WalRecord::SnapshotMark { upto }];
        for (slot, batch) in decisions {
            seed.push(WalRecord::Decide {
                slot,
                batch: batch_bytes(batch),
            });
        }
        for (slot, ballot, batch) in accepted {
            seed.push(WalRecord::Accept {
                slot,
                ballot,
                batch: batch_bytes(batch),
            });
        }
        self.wal.rotate(&seed)
    }

    /// Forces an fsync regardless of policy (used at clean shutdown).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the fsync.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The data directory this state lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended since open (gauge).
    pub fn appended(&self) -> u64 {
        self.wal.appended()
    }

    /// Mirrors WAL commit latency and batch sizes onto `registry`,
    /// recording on `shard` (the owning node's index).
    pub fn attach_obs(&mut self, registry: &irs_obs::Registry, shard: usize) {
        self.wal.attach_obs(registry, shard);
    }

    /// Fsyncs issued since open (gauge).
    pub fn syncs(&self) -> u64 {
        self.wal.syncs()
    }
}
