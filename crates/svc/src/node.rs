//! Driving one [`SvcReplica`] over a [`Transport`] endpoint.
//!
//! [`run_svc_node`] is [`irs_runtime::run_node`] with a different
//! frame-acceptance policy: the default policy drops frames from senders
//! outside the replica group as link noise, but a service must accept
//! *client* frames from endpoints beyond `n`. The policy here admits
//! log traffic from replicas only, requests from any known endpoint, and
//! drops replies (a reply arriving at a replica is stray traffic) — applied
//! identically in the live loop and the shutdown drain.

use crate::msg::SvcMsg;
use crate::replica::SvcReplica;
use irs_net::{wire::decode_payload, Frame, Transport, Wire};
use irs_obs::Obs;
use irs_runtime::{run_node_with, run_node_with_obs, NodeConfig, NodeHandle};
use irs_types::{ProcessId, Protocol, SystemConfig};
use irs_wal::FsyncPolicy;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration as StdDuration;

/// Deployment shape of one service node.
#[derive(Clone, Debug)]
pub struct SvcConfig {
    /// Number of replicas (the consensus group; broadcast fan-out).
    pub n: usize,
    /// Total transport endpoints: replicas plus client endpoints. Frames
    /// from senders at or beyond this have no reply route and are dropped.
    pub peers: usize,
    /// The wall-clock length of one logical tick.
    pub tick: StdDuration,
    /// Most client commands the leader drains into one log slot's batch
    /// (1 = unbatched, the historical behaviour).
    pub batch_max: usize,
    /// Number of consecutive log slots the leader keeps in flight
    /// concurrently (1 = one-slot-at-a-time, the historical behaviour).
    pub pipeline_depth: u64,
    /// Apply-slot interval at which a replica exports its store and
    /// truncates the log's decided prefix behind the snapshot (0 disables
    /// compaction; the log then grows without bound, as before PR 5).
    pub snapshot_interval: u64,
    /// Base directory for durable state. When set, replica `i` keeps its
    /// WAL and snapshot under `<data_dir>/node-<i>/` and survives kill-9:
    /// a restart with the same directory recovers by replay. `None` (the
    /// default) runs replicas purely in memory, as before this PR.
    pub data_dir: Option<PathBuf>,
    /// When a replica syncs its WAL to disk (only meaningful with
    /// `data_dir` set). [`FsyncPolicy::Always`] is the crash-safe default.
    pub fsync: FsyncPolicy,
    /// Shared observability handle. When set, every replica this config
    /// builds records onto its registry (and flight recorder, if the
    /// handle carries one), and [`run_svc_node`] adds host-loop counters.
    /// `None` (the default) runs fully uninstrumented, as before PR 8.
    pub obs: Option<Arc<Obs>>,
    /// Whether replicas take the stable-reign fast path (one reign-scoped
    /// prepare per leadership, Accept-only slots thereafter). On by
    /// default; the E16 baseline turns it off to measure the saving.
    pub phase1_skip: bool,
}

impl SvcConfig {
    /// `n` replicas plus `clients` client endpoints, 100 µs tick, unbatched
    /// single-slot replication, compaction every 1024 applied slots.
    pub fn new(n: usize, clients: usize) -> Self {
        SvcConfig {
            n,
            peers: n + clients,
            tick: StdDuration::from_micros(100),
            batch_max: 1,
            pipeline_depth: 1,
            snapshot_interval: 1024,
            data_dir: None,
            fsync: FsyncPolicy::Always,
            obs: None,
            phase1_skip: true,
        }
    }

    /// Sets the tick length.
    #[must_use]
    pub fn with_tick(mut self, tick: StdDuration) -> Self {
        self.tick = tick.max(StdDuration::from_nanos(1));
        self
    }

    /// Sets the per-slot command batch bound and the in-flight slot window
    /// (both clamped to at least 1).
    #[must_use]
    pub fn with_batching(mut self, batch_max: usize, pipeline_depth: u64) -> Self {
        self.batch_max = batch_max.max(1);
        self.pipeline_depth = pipeline_depth.max(1);
        self
    }

    /// Sets the snapshot/compaction interval in applied slots (0 disables).
    #[must_use]
    pub fn with_snapshot_interval(mut self, interval: u64) -> Self {
        self.snapshot_interval = interval;
        self
    }

    /// Makes replicas durable: WAL + snapshot under `<base>/node-<i>/`.
    #[must_use]
    pub fn with_data_dir(mut self, base: impl Into<PathBuf>) -> Self {
        self.data_dir = Some(base.into());
        self
    }

    /// Sets the WAL fsync policy (no effect without a data dir).
    #[must_use]
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Attaches a shared observability handle (see [`SvcConfig::obs`]).
    #[must_use]
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enables or disables the stable-reign fast path (default on).
    #[must_use]
    pub fn with_phase1_skip(mut self, enabled: bool) -> Self {
        self.phase1_skip = enabled;
        self
    }

    /// The data directory of replica `id` under this config, if durable.
    pub fn node_dir(&self, id: ProcessId) -> Option<PathBuf> {
        self.data_dir
            .as_ref()
            .map(|base| base.join(format!("node-{}", id.index())))
    }

    /// Builds the replica this config describes — the canonical way to
    /// construct the node passed to [`run_svc_node`]. The batching,
    /// pipelining and compaction knobs live on the config but act inside
    /// the replica; building the replica anywhere else risks the two
    /// silently disagreeing (a replica built with `SvcReplica::new` next
    /// to a `with_batching(…)` config runs unbatched). Resilience is the
    /// largest consensus-compatible `t = ⌊(n−1)/2⌋`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (no consensus-compatible resilience).
    pub fn replica(&self, id: ProcessId) -> SvcReplica {
        assert!(self.n >= 3, "a replicated service needs n >= 3");
        let system = SystemConfig::new(self.n, (self.n - 1) / 2).expect("valid replica system");
        let mut replica = match self.node_dir(id) {
            Some(dir) => SvcReplica::durable(
                id,
                system,
                self.batch_max,
                self.pipeline_depth,
                self.snapshot_interval,
                &dir,
                self.fsync,
            )
            .expect("open durable replica state"),
            None => SvcReplica::with_tuning(
                id,
                system,
                self.batch_max,
                self.pipeline_depth,
                self.snapshot_interval,
            ),
        };
        replica.set_phase1_skip(self.phase1_skip);
        if let Some(obs) = &self.obs {
            replica.attach_obs(obs);
        }
        replica
    }
}

/// The service's frame-acceptance policy (see module docs). Public so the
/// process-per-node deployments (`examples/kv_cluster.rs`) share the exact
/// policy with [`run_svc_node`].
pub fn accept_svc_frame(frame: &Frame, me: ProcessId, n: usize, peers: usize) -> Option<SvcMsg> {
    accept_svc_frame_bytes(frame.from, frame.to, &frame.payload, me, n, peers)
}

/// [`accept_svc_frame`] over borrowed parts instead of an assembled
/// [`Frame`] — the policy the multiplexed deployment applies on the
/// reactor's borrowed-bytes decode path (the service analogue of
/// [`irs_runtime::accept_frame_bytes`]).
pub fn accept_svc_frame_bytes(
    from: ProcessId,
    to: ProcessId,
    payload: &[u8],
    me: ProcessId,
    n: usize,
    peers: usize,
) -> Option<SvcMsg> {
    if to != me {
        return None;
    }
    let msg = decode_payload::<SvcMsg>(payload).ok()?;
    if !msg.valid_for(n) {
        return None;
    }
    match msg {
        // The consensus and lease planes are replicas-only.
        SvcMsg::Log(_) | SvcMsg::LeaseProbe { .. } | SvcMsg::LeaseAck { .. } => {
            (from.index() < n).then_some(msg)
        }
        // Requests and reads may come from any endpoint we can route a
        // reply to.
        SvcMsg::Request { .. } | SvcMsg::Read { .. } => (from.index() < peers).then_some(msg),
        // Replies belong on the client side of the link.
        SvcMsg::Reply(_) => None,
    }
}

/// Drives `replica` over `transport` until [`NodeHandle::stop`] is set,
/// then returns the final replica state (its store included). Semantics
/// match [`irs_runtime::run_node`]: wall-clock timers, crash flag, and the
/// quiet-window shutdown drain.
pub fn run_svc_node<T: Transport>(
    replica: SvcReplica,
    transport: T,
    config: SvcConfig,
    handle: NodeHandle,
) -> SvcReplica {
    let me = replica.id();
    let (n, peers) = (config.n, config.peers);
    let node_config = NodeConfig::new(n).with_tick(config.tick);
    let accept = move |frame: &Frame| accept_svc_frame(frame, me, n, peers);
    match &config.obs {
        Some(obs) => run_node_with_obs(replica, transport, node_config, handle, accept, obs),
        None => run_node_with(replica, transport, node_config, handle, accept),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvOp, KvWrite};
    use crate::msg::SvcReply;
    use irs_net::wire::encode_frame;
    use irs_net::Wire;
    use std::sync::Arc;

    fn frame(from: u32, to: u32, msg: &SvcMsg) -> Frame {
        let mut payload = Vec::new();
        msg.encode(&mut payload);
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            ProcessId::new(from),
            ProcessId::new(to),
            &payload,
        );
        let (f, t, p) = irs_net::wire::decode_frame(&bytes).unwrap();
        Frame {
            from: f,
            to: t,
            payload: Arc::from(p),
        }
    }

    #[test]
    fn policy_admits_clients_but_not_stray_planes() {
        let me = ProcessId::new(0);
        let (n, peers) = (5, 8);
        let request = SvcMsg::Request {
            cmd: KvWrite {
                client: 6,
                seq: 1,
                op: KvOp::Del { key: b"k".to_vec() },
            }
            .encode(),
        };
        let log = SvcMsg::Log(irs_consensus::LogMsg::Catchup { from: 0 });
        let reply = SvcMsg::Reply(SvcReply::Applied {
            client: 6,
            seq: 1,
            slot: 0,
        });
        // A client (endpoint 6) may send requests but not log traffic.
        assert!(accept_svc_frame(&frame(6, 0, &request), me, n, peers).is_some());
        assert!(accept_svc_frame(&frame(6, 0, &log), me, n, peers).is_none());
        // A replica may send log traffic.
        assert!(accept_svc_frame(&frame(2, 0, &log), me, n, peers).is_some());
        // Senders beyond the peer table have no reply route.
        assert!(accept_svc_frame(&frame(9, 0, &request), me, n, peers).is_none());
        // Replies never enter a replica; misrouted frames die too.
        assert!(accept_svc_frame(&frame(2, 0, &reply), me, n, peers).is_none());
        assert!(accept_svc_frame(&frame(2, 3, &log), me, n, peers).is_none());
    }

    /// The read plane follows the same boundary: reads are client traffic,
    /// lease probes/acks are replica-only, value replies never enter a
    /// replica.
    #[test]
    fn policy_splits_the_read_plane_like_the_write_plane() {
        let me = ProcessId::new(0);
        let (n, peers) = (5, 8);
        let read = SvcMsg::Read {
            client: 6,
            rid: 1,
            key: b"k".to_vec(),
            tier: crate::msg::ReadTier::Lease,
        };
        let probe = SvcMsg::LeaseProbe { rid: 3 };
        let ack = SvcMsg::LeaseAck {
            rid: 3,
            granted: true,
        };
        let value = SvcMsg::Reply(SvcReply::Value {
            client: 6,
            rid: 1,
            value: None,
            frontier: 0,
        });
        assert!(accept_svc_frame(&frame(6, 0, &read), me, n, peers).is_some());
        assert!(accept_svc_frame(&frame(9, 0, &read), me, n, peers).is_none());
        assert!(accept_svc_frame(&frame(2, 0, &probe), me, n, peers).is_some());
        assert!(accept_svc_frame(&frame(2, 0, &ack), me, n, peers).is_some());
        assert!(accept_svc_frame(&frame(6, 0, &probe), me, n, peers).is_none());
        assert!(accept_svc_frame(&frame(6, 0, &ack), me, n, peers).is_none());
        assert!(accept_svc_frame(&frame(2, 0, &value), me, n, peers).is_none());
    }
}
