//! Driving one [`SvcReplica`] over a [`Transport`] endpoint.
//!
//! [`run_svc_node`] is [`irs_runtime::run_node`] with a different
//! frame-acceptance policy: the default policy drops frames from senders
//! outside the replica group as link noise, but a service must accept
//! *client* frames from endpoints beyond `n`. The policy here admits
//! log traffic from replicas only, requests from any known endpoint, and
//! drops replies (a reply arriving at a replica is stray traffic) — applied
//! identically in the live loop and the shutdown drain.

use crate::msg::SvcMsg;
use crate::replica::SvcReplica;
use irs_net::{wire::decode_payload, Frame, Transport, Wire};
use irs_runtime::{run_node_with, NodeConfig, NodeHandle};
use irs_types::{ProcessId, Protocol};
use std::time::Duration as StdDuration;

/// Deployment shape of one service node.
#[derive(Clone, Copy, Debug)]
pub struct SvcConfig {
    /// Number of replicas (the consensus group; broadcast fan-out).
    pub n: usize,
    /// Total transport endpoints: replicas plus client endpoints. Frames
    /// from senders at or beyond this have no reply route and are dropped.
    pub peers: usize,
    /// The wall-clock length of one logical tick.
    pub tick: StdDuration,
}

impl SvcConfig {
    /// `n` replicas plus `clients` client endpoints, 100 µs tick.
    pub fn new(n: usize, clients: usize) -> Self {
        SvcConfig {
            n,
            peers: n + clients,
            tick: StdDuration::from_micros(100),
        }
    }

    /// Sets the tick length.
    #[must_use]
    pub fn with_tick(mut self, tick: StdDuration) -> Self {
        self.tick = tick.max(StdDuration::from_nanos(1));
        self
    }
}

/// The service's frame-acceptance policy (see module docs). Public so the
/// process-per-node deployments (`examples/kv_cluster.rs`) share the exact
/// policy with [`run_svc_node`].
pub fn accept_svc_frame(frame: &Frame, me: ProcessId, n: usize, peers: usize) -> Option<SvcMsg> {
    if frame.to != me {
        return None;
    }
    let msg = decode_payload::<SvcMsg>(&frame.payload).ok()?;
    if !msg.valid_for(n) {
        return None;
    }
    match msg {
        // The consensus plane is replicas-only.
        SvcMsg::Log(_) => (frame.from.index() < n).then_some(msg),
        // Requests may come from any endpoint we can route a reply to.
        SvcMsg::Request { .. } => (frame.from.index() < peers).then_some(msg),
        // Replies belong on the client side of the link.
        SvcMsg::Reply(_) => None,
    }
}

/// Drives `replica` over `transport` until [`NodeHandle::stop`] is set,
/// then returns the final replica state (its store included). Semantics
/// match [`irs_runtime::run_node`]: wall-clock timers, crash flag, and the
/// quiet-window shutdown drain.
pub fn run_svc_node<T: Transport>(
    replica: SvcReplica,
    transport: T,
    config: SvcConfig,
    handle: NodeHandle,
) -> SvcReplica {
    let me = replica.id();
    let (n, peers) = (config.n, config.peers);
    run_node_with(
        replica,
        transport,
        NodeConfig::new(n).with_tick(config.tick),
        handle,
        move |frame| accept_svc_frame(frame, me, n, peers),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{KvOp, KvWrite};
    use crate::msg::SvcReply;
    use irs_net::wire::encode_frame;
    use irs_net::Wire;
    use std::sync::Arc;

    fn frame(from: u32, to: u32, msg: &SvcMsg) -> Frame {
        let mut payload = Vec::new();
        msg.encode(&mut payload);
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            ProcessId::new(from),
            ProcessId::new(to),
            &payload,
        );
        let (f, t, p) = irs_net::wire::decode_frame(&bytes).unwrap();
        Frame {
            from: f,
            to: t,
            payload: Arc::from(p),
        }
    }

    #[test]
    fn policy_admits_clients_but_not_stray_planes() {
        let me = ProcessId::new(0);
        let (n, peers) = (5, 8);
        let request = SvcMsg::Request {
            cmd: KvWrite {
                client: 6,
                seq: 1,
                op: KvOp::Del { key: b"k".to_vec() },
            }
            .encode(),
        };
        let log = SvcMsg::Log(irs_consensus::LogMsg::Catchup { from: 0 });
        let reply = SvcMsg::Reply(SvcReply::Applied {
            client: 6,
            seq: 1,
            slot: 0,
        });
        // A client (endpoint 6) may send requests but not log traffic.
        assert!(accept_svc_frame(&frame(6, 0, &request), me, n, peers).is_some());
        assert!(accept_svc_frame(&frame(6, 0, &log), me, n, peers).is_none());
        // A replica may send log traffic.
        assert!(accept_svc_frame(&frame(2, 0, &log), me, n, peers).is_some());
        // Senders beyond the peer table have no reply route.
        assert!(accept_svc_frame(&frame(9, 0, &request), me, n, peers).is_none());
        // Replies never enter a replica; misrouted frames die too.
        assert!(accept_svc_frame(&frame(2, 0, &reply), me, n, peers).is_none());
        assert!(accept_svc_frame(&frame(2, 3, &log), me, n, peers).is_none());
    }
}
