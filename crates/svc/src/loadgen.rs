//! The load-generator harness: closed-loop and open-loop clients with
//! log2-bucket latency histograms, plus the replica-consistency checker the
//! E12 experiments and the crash tests share.
//!
//! * [`closed_loop`] — every client keeps exactly one request outstanding
//!   (classic saturation load: ops/s is limited by latency × clients).
//! * [`open_loop`] — one client fires at a fixed interval regardless of
//!   acks (arrival-rate load: latency reflects queueing, unacked requests
//!   at the end count as failures).
//!
//! Latencies are recorded in microseconds into [`irs_obs::Histogram`] —
//! the same log2-bucket type the metrics registry scrapes, so load-test
//! percentiles and live-service percentiles come from one implementation
//! (log2 buckets, so p50/p99 reads are factor-of-two accurate at O(1)
//! memory per client).

use crate::client::{ClientError, ReplyOutcome, SvcClient};
use crate::command::{KvOp, KvWrite};
use crate::msg::ReadTier;
use crate::replica::SvcReplica;
use irs_net::Transport;
use irs_obs::Histogram;
use irs_types::Protocol;
use std::collections::BTreeMap;
use std::time::{Duration as StdDuration, Instant};

/// What one load run produced.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Acknowledged operations.
    pub ops: u64,
    /// Operations that exhausted their deadline (closed loop) or were never
    /// acked (open loop).
    pub failures: u64,
    /// Redirects followed across all clients.
    pub redirects: u64,
    /// Timed-out attempts that were retried.
    pub retries: u64,
    /// Wall-clock span of the run.
    pub elapsed: StdDuration,
    /// Ack latencies in microseconds.
    pub latency: Histogram,
}

impl LoadReport {
    /// Acknowledged operations per second of wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// One acknowledged write, as the issuing client saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AckedWrite {
    /// The client's sequence number.
    pub seq: u64,
    /// The key written.
    pub key: Vec<u8>,
    /// The log slot the ack named.
    pub slot: u64,
}

/// Everything one client got acknowledged during a run.
#[derive(Clone, Debug, Default)]
pub struct ClientAcks {
    /// The logical client id.
    pub client: u64,
    /// Acked writes in issue order.
    pub acked: Vec<AckedWrite>,
}

/// Tuning of a closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopOptions {
    /// Wall-clock length of the run.
    pub duration: StdDuration,
    /// Per-operation deadline (retries included).
    pub op_deadline: StdDuration,
    /// Keys each client cycles through (its own key space).
    pub keys_per_client: u64,
    /// Value payload length in bytes (the first 8 carry the seq).
    pub value_len: usize,
}

impl Default for ClosedLoopOptions {
    fn default() -> Self {
        ClosedLoopOptions {
            duration: StdDuration::from_secs(2),
            op_deadline: StdDuration::from_secs(3),
            keys_per_client: 8,
            value_len: 16,
        }
    }
}

/// The key client `client` uses for its `k`-th slot of the key space.
pub fn key_for(client: u64, k: u64) -> Vec<u8> {
    format!("c{client}-k{k}").into_bytes()
}

/// The value carrying `seq` (LE in the first 8 bytes, zero padded).
pub fn value_for(seq: u64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len.max(8)];
    v[..8].copy_from_slice(&seq.to_le_bytes());
    v
}

/// The seq a value carries (written by [`value_for`]).
pub fn seq_of_value(value: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(value.get(..8)?.try_into().ok()?))
}

/// Runs every client closed-loop (one outstanding request each) for the
/// configured duration, one OS thread per client. Returns the merged
/// report and each client's acked writes.
pub fn closed_loop<T: Transport>(
    clients: &mut [SvcClient<T>],
    opts: ClosedLoopOptions,
) -> (LoadReport, Vec<ClientAcks>) {
    let started = Instant::now();
    let per_client: Vec<(Histogram, ClientAcks, u64, crate::ClientStats)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .iter_mut()
                .map(|client| {
                    scope.spawn(move || {
                        let stats_before = client.stats;
                        let mut hist = Histogram::new();
                        let mut acks = ClientAcks {
                            client: client.client_id(),
                            acked: Vec::new(),
                        };
                        let mut failures = 0u64;
                        let deadline = Instant::now() + opts.duration;
                        let mut k = 0u64;
                        while Instant::now() < deadline {
                            let key = key_for(acks.client, k % opts.keys_per_client);
                            k += 1;
                            let seq = client.next_seq();
                            let value = value_for(seq, opts.value_len);
                            let op_started = Instant::now();
                            match client.put(&key, &value, opts.op_deadline) {
                                Ok(slot) => {
                                    hist.record(op_started.elapsed().as_micros() as u64);
                                    acks.acked.push(AckedWrite { seq, key, slot });
                                }
                                Err(ClientError::Closed) => break,
                                Err(ClientError::TimedOut) => failures += 1,
                            }
                        }
                        let stats = client.stats;
                        (
                            hist,
                            acks,
                            failures,
                            crate::ClientStats {
                                acked: stats.acked - stats_before.acked,
                                redirects: stats.redirects - stats_before.redirects,
                                retries: stats.retries - stats_before.retries,
                                failures: stats.failures - stats_before.failures,
                            },
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        });
    let mut report = LoadReport {
        elapsed: started.elapsed(),
        ..LoadReport::default()
    };
    let mut acked = Vec::new();
    for (hist, acks, failures, stats) in per_client {
        report.ops += acks.acked.len() as u64;
        report.failures += failures;
        report.redirects += stats.redirects;
        report.retries += stats.retries;
        report.latency.merge(&hist);
        acked.push(acks);
    }
    (report, acked)
}

/// Tuning of an open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopOptions {
    /// Wall-clock length of the sending phase.
    pub duration: StdDuration,
    /// Interval between fires (1 / target rate).
    pub interval: StdDuration,
    /// Keys the client cycles through.
    pub keys: u64,
    /// Value payload length in bytes.
    pub value_len: usize,
    /// Extra window after the last fire to collect stragglers.
    pub drain: StdDuration,
}

impl Default for OpenLoopOptions {
    fn default() -> Self {
        OpenLoopOptions {
            duration: StdDuration::from_secs(2),
            interval: StdDuration::from_millis(5),
            keys: 8,
            value_len: 16,
            drain: StdDuration::from_secs(2),
        }
    }
}

/// Runs one client open-loop: writes are fired on a fixed interval whether
/// or not earlier ones were acked; redirects resend in place. Anything
/// still unacked after the drain window counts as a failure.
pub fn open_loop<T: Transport>(client: &mut SvcClient<T>, opts: OpenLoopOptions) -> LoadReport {
    let started = Instant::now();
    let stats_before = client.stats;
    let send_deadline = started + opts.duration;
    let mut next_fire = started;
    let mut pending: BTreeMap<u64, (Instant, KvWrite)> = BTreeMap::new();
    let mut report = LoadReport::default();
    let mut k = 0u64;
    let client_id = client.client_id();

    loop {
        let now = Instant::now();
        if now >= send_deadline {
            break;
        }
        if now >= next_fire {
            let seq = client.alloc_seq();
            let w = KvWrite {
                client: client_id,
                seq,
                op: KvOp::Put {
                    key: key_for(client_id, k % opts.keys),
                    value: value_for(seq, opts.value_len),
                },
            };
            k += 1;
            if client.send_write(&w).is_err() {
                break;
            }
            pending.insert(seq, (Instant::now(), w));
            next_fire += opts.interval;
            continue;
        }
        let wait = next_fire.min(send_deadline).saturating_duration_since(now);
        match client.poll_event(wait) {
            Ok(Some((seq, ReplyOutcome::Applied { .. }))) => {
                if let Some((fired_at, _)) = pending.remove(&seq) {
                    report.ops += 1;
                    report.latency.record(fired_at.elapsed().as_micros() as u64);
                }
            }
            Ok(Some((seq, ReplyOutcome::Redirected))) => {
                if let Some((_, w)) = pending.get(&seq).cloned() {
                    let _ = client.send_write(&w);
                }
            }
            Ok(Some((_, ReplyOutcome::Value { .. }))) | Ok(None) => {}
            Err(_) => break,
        }
    }

    // Straggler window: collect what is still in flight.
    let drain_deadline = Instant::now() + opts.drain;
    while !pending.is_empty() && Instant::now() < drain_deadline {
        let wait = drain_deadline.saturating_duration_since(Instant::now());
        match client.poll_event(wait.min(StdDuration::from_millis(50))) {
            Ok(Some((seq, ReplyOutcome::Applied { .. }))) => {
                if let Some((fired_at, _)) = pending.remove(&seq) {
                    report.ops += 1;
                    report.latency.record(fired_at.elapsed().as_micros() as u64);
                }
            }
            Ok(Some((seq, ReplyOutcome::Redirected))) => {
                if let Some((_, w)) = pending.get(&seq).cloned() {
                    let _ = client.send_write(&w);
                }
            }
            Ok(Some((_, ReplyOutcome::Value { .. }))) | Ok(None) => {}
            Err(_) => break,
        }
    }
    report.failures = pending.len() as u64;
    report.redirects = client.stats.redirects - stats_before.redirects;
    report.retries = client.stats.retries - stats_before.retries;
    report.elapsed = started.elapsed();
    report
}

/// Drives `clients` closed-loop while a side thread crash-stops whichever
/// replica leads `crash_after` into the run (falling back to `p1` when no
/// agreement is visible yet). Returns the merged report, the acked writes,
/// and the crashed replica — the shared harness behind the E12
/// leader-crash row and the `crash_consistency` acceptance test.
pub fn closed_loop_with_leader_crash<T: Transport>(
    cluster: &crate::SvcCluster,
    clients: &mut [SvcClient<T>],
    opts: ClosedLoopOptions,
    crash_after: StdDuration,
) -> (LoadReport, Vec<ClientAcks>, irs_types::ProcessId) {
    std::thread::scope(|scope| {
        let crasher = scope.spawn(move || {
            std::thread::sleep(crash_after);
            let victim = cluster
                .agreed_leader()
                .unwrap_or(irs_types::ProcessId::new(0));
            cluster.crash(victim);
            victim
        });
        let (report, acked) = closed_loop(clients, opts);
        (report, acked, crasher.join().expect("crasher thread"))
    })
}

/// Polls the survivors' snapshots until their `kv_digest` and `applied`
/// gauges all agree (the catch-up protocol has converged them) or `limit`
/// expires; returns whether they converged. Call after the load stops and
/// before freezing the cluster for a consistency check.
pub fn await_survivor_convergence(
    cluster: &crate::SvcCluster,
    crashed: irs_types::ProcessId,
    limit: StdDuration,
) -> bool {
    let deadline = Instant::now() + limit;
    loop {
        let snaps: Vec<_> = (0..cluster.n() as u32)
            .map(irs_types::ProcessId::new)
            .filter(|&p| p != crashed)
            .map(|p| cluster.snapshot(p))
            .collect();
        let converged = snaps.windows(2).all(|w| {
            w[0].gauge("kv_digest") == w[1].gauge("kv_digest")
                && w[0].gauge("applied") == w[1].gauge("applied")
        });
        if converged {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(StdDuration::from_millis(25));
    }
}

/// Checks that the given (surviving) replicas hold identical applied state
/// and that no acked write was lost or reordered:
///
/// 1. every replica's store digest and full map equal the first's;
/// 2. per client, applied sequence numbers are monotone by construction
///    (the store skips non-increasing seqs) and the last applied seq is at
///    least the largest acked one — an acked write can never disappear;
/// 3. for every key a client got acks on, the surviving value carries a
///    seq no older than the newest acked write of that key.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_consistency(replicas: &[&SvcReplica], acked: &[ClientAcks]) -> Result<(), String> {
    let Some(first) = replicas.first() else {
        return Err("no surviving replicas to compare".into());
    };
    for r in &replicas[1..] {
        if r.store().digest() != first.store().digest() || r.store().map() != first.store().map() {
            return Err(format!(
                "replica {} diverged from replica {}: digests {:#x} vs {:#x}",
                r.id(),
                first.id(),
                r.store().digest(),
                first.store().digest()
            ));
        }
    }
    for client in acked {
        let Some(last) = client.acked.iter().map(|a| a.seq).max() else {
            continue;
        };
        match first.store().last_applied(client.client) {
            None => {
                return Err(format!(
                    "client {} had acks but no applied writes survive",
                    client.client
                ))
            }
            Some((applied_seq, _)) if applied_seq < last => {
                return Err(format!(
                    "client {}: acked seq {last} but replicas applied only up to {applied_seq}",
                    client.client
                ))
            }
            Some(_) => {}
        }
        // Per key: the surviving value is at least as new as the newest ack.
        let mut newest_per_key: BTreeMap<&[u8], u64> = BTreeMap::new();
        for a in &client.acked {
            let e = newest_per_key.entry(a.key.as_slice()).or_insert(a.seq);
            *e = (*e).max(a.seq);
        }
        for (key, newest) in newest_per_key {
            let Some(value) = first.store().get(key) else {
                return Err(format!(
                    "client {}: acked key {:?} missing from surviving state",
                    client.client, key
                ));
            };
            match seq_of_value(value) {
                Some(seq) if seq >= newest => {}
                other => {
                    return Err(format!(
                        "client {}: key {:?} holds {:?}, older than acked seq {newest}",
                        client.client, key, other
                    ))
                }
            }
        }
    }
    Ok(())
}

// ---- Mixed read/write load (the E16 family) ----

/// Tuning of a mixed read/write closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct MixedLoopOptions {
    /// Wall-clock length of the run.
    pub duration: StdDuration,
    /// Per-operation deadline (retries included).
    pub op_deadline: StdDuration,
    /// Keys each client cycles through.
    pub keys_per_client: u64,
    /// Value payload length in bytes.
    pub value_len: usize,
    /// Reads per 100 operations (95 = the read-heavy mix, 50 = balanced).
    pub read_pct: u32,
    /// The consistency tier every read selects.
    pub tier: ReadTier,
}

impl Default for MixedLoopOptions {
    fn default() -> Self {
        MixedLoopOptions {
            duration: StdDuration::from_secs(2),
            op_deadline: StdDuration::from_secs(3),
            keys_per_client: 8,
            value_len: 16,
            read_pct: 95,
            tier: ReadTier::Lease,
        }
    }
}

/// What one mixed run produced, split by operation class.
#[derive(Clone, Debug, Default)]
pub struct MixedReport {
    /// Acknowledged writes.
    pub writes: u64,
    /// Writes that exhausted their deadline.
    pub write_failures: u64,
    /// Answered reads.
    pub reads: u64,
    /// Reads that exhausted their deadline.
    pub read_failures: u64,
    /// Redirects followed across all clients.
    pub redirects: u64,
    /// Wall-clock span of the run.
    pub elapsed: StdDuration,
    /// Write ack latencies, µs.
    pub write_latency: Histogram,
    /// Read answer latencies, µs.
    pub read_latency: Histogram,
}

impl MixedReport {
    /// Answered reads per second of wall clock.
    pub fn reads_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.reads as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Acknowledged writes per second of wall clock.
    pub fn writes_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.writes as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// All answered operations per second of wall clock.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            (self.reads + self.writes) as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// One answered read, as the issuing client saw it, with the bounds the
/// linearizability checker needs: what the client had *acked* on the key
/// before issuing (the floor a linearizable read must observe) and what it
/// had *issued* (the ceiling any read may observe — a value never written
/// cannot be read).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservedRead {
    /// The key read.
    pub key: Vec<u8>,
    /// The seq carried by the returned value (`None` = key unbound).
    pub value_seq: Option<u64>,
    /// The answering replica's apply frontier (staleness witness).
    pub frontier: u64,
    /// Largest write seq this client had acked on the key before issuing.
    pub acked_floor: Option<u64>,
    /// Largest write seq this client had issued on the key before issuing
    /// (timed-out writes included — they may still land).
    pub issued_ceiling: Option<u64>,
}

/// Everything one client observed through reads during a run.
#[derive(Clone, Debug, Default)]
pub struct ClientReads {
    /// The logical client id.
    pub client: u64,
    /// The tier the reads ran at.
    pub tier: Option<ReadTier>,
    /// Answered reads in issue order.
    pub reads: Vec<ObservedRead>,
}

/// Runs every client closed-loop on a deterministic read/write mix
/// (`read_pct` reads per 100 ops, interleaved evenly). Returns the merged
/// per-class report, each client's acked writes (for
/// [`check_consistency`]) and each client's observed reads (for
/// [`check_read_linearizability`]).
pub fn mixed_loop<T: Transport>(
    clients: &mut [SvcClient<T>],
    opts: MixedLoopOptions,
) -> (MixedReport, Vec<ClientAcks>, Vec<ClientReads>) {
    let started = Instant::now();
    let per_client: Vec<(MixedReport, ClientAcks, ClientReads)> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .map(|client| {
                scope.spawn(move || {
                    let stats_before = client.stats;
                    let mut report = MixedReport::default();
                    let mut acks = ClientAcks {
                        client: client.client_id(),
                        acked: Vec::new(),
                    };
                    let mut reads = ClientReads {
                        client: client.client_id(),
                        tier: Some(opts.tier),
                        reads: Vec::new(),
                    };
                    // Per key: largest acked and largest issued write seq.
                    let mut acked_floor: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
                    let mut issued_ceiling: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
                    let deadline = Instant::now() + opts.duration;
                    let mut op = 0u64;
                    let mut k = 0u64;
                    while Instant::now() < deadline {
                        let key = key_for(acks.client, k % opts.keys_per_client);
                        k += 1;
                        // Even interleave: op i is a read iff its residue
                        // falls inside the read share of each 100-op window.
                        let is_read = (op % 100) < u64::from(opts.read_pct.min(100));
                        op += 1;
                        let op_started = Instant::now();
                        if is_read {
                            match client.get(&key, opts.tier, opts.op_deadline) {
                                Ok((value, frontier)) => {
                                    report
                                        .read_latency
                                        .record(op_started.elapsed().as_micros() as u64);
                                    report.reads += 1;
                                    reads.reads.push(ObservedRead {
                                        value_seq: value.as_deref().and_then(seq_of_value),
                                        frontier,
                                        acked_floor: acked_floor.get(&key).copied(),
                                        issued_ceiling: issued_ceiling.get(&key).copied(),
                                        key,
                                    });
                                }
                                Err(ClientError::Closed) => break,
                                Err(ClientError::TimedOut) => report.read_failures += 1,
                            }
                        } else {
                            let seq = client.next_seq();
                            let value = value_for(seq, opts.value_len);
                            issued_ceiling.insert(key.clone(), seq);
                            match client.put(&key, &value, opts.op_deadline) {
                                Ok(slot) => {
                                    report
                                        .write_latency
                                        .record(op_started.elapsed().as_micros() as u64);
                                    report.writes += 1;
                                    acked_floor.insert(key.clone(), seq);
                                    acks.acked.push(AckedWrite { seq, key, slot });
                                }
                                Err(ClientError::Closed) => break,
                                Err(ClientError::TimedOut) => report.write_failures += 1,
                            }
                        }
                    }
                    report.redirects = client.stats.redirects - stats_before.redirects;
                    (report, acks, reads)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let mut merged = MixedReport {
        elapsed: started.elapsed(),
        ..MixedReport::default()
    };
    let (mut all_acks, mut all_reads) = (Vec::new(), Vec::new());
    for (report, acks, reads) in per_client {
        merged.writes += report.writes;
        merged.write_failures += report.write_failures;
        merged.reads += report.reads;
        merged.read_failures += report.read_failures;
        merged.redirects += report.redirects;
        merged.write_latency.merge(&report.write_latency);
        merged.read_latency.merge(&report.read_latency);
        all_acks.push(acks);
        all_reads.push(reads);
    }
    (merged, all_acks, all_reads)
}

/// [`mixed_loop`] with the agreed leader crash-stopped after `crash_after`
/// — the E16 crash-during-lease scenario. The crash lands while the
/// victim's lease may still be live, so this is the run that exercises the
/// lease expiry / redirect / re-election path under a read-heavy mix.
/// Returns the report, acks, reads, and who was crashed.
pub fn mixed_loop_with_leader_crash<T: Transport>(
    cluster: &crate::SvcCluster,
    clients: &mut [SvcClient<T>],
    opts: MixedLoopOptions,
    crash_after: StdDuration,
) -> (
    MixedReport,
    Vec<ClientAcks>,
    Vec<ClientReads>,
    irs_types::ProcessId,
) {
    std::thread::scope(|scope| {
        let crasher = scope.spawn(move || {
            std::thread::sleep(crash_after);
            let victim = cluster
                .agreed_leader()
                .unwrap_or(irs_types::ProcessId::new(0));
            cluster.crash(victim);
            victim
        });
        let (report, acked, reads) = mixed_loop(clients, opts);
        (
            report,
            acked,
            reads,
            crasher.join().expect("crasher thread"),
        )
    })
}

/// Verifies every observed read against the acked write order the same
/// client produced:
///
/// * **any tier** — a read never returns a value the client had not yet
///   issued on that key (values carry their write seq; an invented or
///   cross-key value is a protocol violation);
/// * **linearizable tiers** ([`ReadTier::Lease`], [`ReadTier::ReadIndex`])
///   — a read issued after the client acked write seq `s` on the key
///   returns a value with seq ≥ `s` (acked writes are visible), and the
///   seqs a client observes on one key never go backwards across its own
///   reads (real-time order at one observer).
///
/// Stale-tier reads are exempt from the floor and monotonicity — their
/// guarantee (the answer is a committed prefix) is pinned by the
/// replica-level frontier-bound test instead.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_read_linearizability(reads: &[ClientReads]) -> Result<(), String> {
    for log in reads {
        let linearizable = !matches!(log.tier, Some(ReadTier::Stale));
        let mut seen_floor: BTreeMap<&[u8], u64> = BTreeMap::new();
        for (i, r) in log.reads.iter().enumerate() {
            if let Some(seq) = r.value_seq {
                match r.issued_ceiling {
                    Some(ceiling) if seq <= ceiling => {}
                    other => {
                        return Err(format!(
                            "client {} read #{i} of {:?}: value seq {seq} above issued ceiling {other:?}",
                            log.client, r.key
                        ))
                    }
                }
            }
            if !linearizable {
                continue;
            }
            if let Some(floor) = r.acked_floor {
                match r.value_seq {
                    Some(seq) if seq >= floor => {}
                    other => {
                        return Err(format!(
                            "client {} read #{i} of {:?}: acked seq {floor} before the read, \
                             but it returned {other:?} — an acked write went invisible",
                            log.client, r.key
                        ))
                    }
                }
            }
            if let Some(seq) = r.value_seq {
                let e = seen_floor.entry(r.key.as_slice()).or_insert(seq);
                if seq < *e {
                    return Err(format!(
                        "client {} read #{i} of {:?}: observed seq went backwards {} -> {seq}",
                        log.client, r.key, *e
                    ));
                }
                *e = seq;
            }
        }
    }
    Ok(())
}
