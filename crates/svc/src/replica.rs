//! One service replica: the replicated log plus the KV apply loop plus the
//! client request handling, as a single sans-IO [`Protocol`].
//!
//! # The leader lease and its clock-safety argument
//!
//! The lease plane lets a stable leader serve linearizable reads without
//! logging them. Every [`TIMER_LEASE`] period the leader broadcasts a
//! [`SvcMsg::LeaseProbe`]; a replica answers granted only while its own Ω
//! output names the prober and it holds no unexpired grant to anyone else.
//! A quorum of grants makes the lease valid for [`LEASE_VALIDITY`] periods
//! counted **from the period the probe was sent**, while each granting
//! replica honours its grant for [`GRANT_PERIODS`] periods counted **from
//! the period the probe was received**. Receipt never precedes send in
//! real time, so with `GRANT_PERIODS = 2 × LEASE_VALIDITY` every grant
//! outlives the leader's validity window as long as no replica's timer
//! cadence runs more than twice as fast as the leader's — far beyond the
//! drift of timers all driven at the same configured tick. While the
//! quorum lease is valid no competing leader can collect its own quorum of
//! grants, and Ω stability (the paper's intermittent rotating star) is
//! exactly what keeps the grants flowing — so a lease-tier read served
//! from the leader's applied store observes every write the service ever
//! acknowledged, because acks are only sent after local application at
//! that same leader.
//!
//! When the lease is uncertain (just elected, grants lost, Ω flickering)
//! a lease-tier read degrades to the read-index path: the read is queued
//! with the current decided frontier as its read index, leadership is
//! re-confirmed by a quorum of granted acks for a probe round **started
//! after the read arrived**, and the answer waits until the apply cursor
//! covers the read index. Stale-tier reads skip coordination entirely:
//! any replica answers from its applied prefix, so the answer is a
//! committed (possibly old) state — never an unacked in-flight write.

use crate::command::KvWrite;
use crate::durability::Durability;
use crate::msg::{ReadTier, ReplicaLogMsg, SvcMsg, SvcReply};
use crate::store::KvStore;
use irs_consensus::{Command, ConsensusConfig, ReplicatedLog, MAX_SNAPSHOT_LEN};
use irs_omega::OmegaProcess;
use irs_types::{
    Actions, Destination, Duration, Introspect, LeaderOracle, ProcessId, Protocol, Snapshot,
    SystemConfig, TimerId,
};
use irs_wal::FsyncPolicy;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

/// The lease/read-index probe timer (disjoint from the oracle's 0..,
/// consensus' 200 and the log's 201).
pub const TIMER_LEASE: TimerId = TimerId::new(202);

/// Periods a quorum-granted lease stays valid, counted from the period the
/// winning probe was *sent* (see the module docs for why send-side
/// counting is the safe side of the inequality).
const LEASE_VALIDITY: u64 = 4;

/// Periods a replica honours a grant, counted from probe *receipt*. Twice
/// the validity window: the safety margin against relative timer drift.
const GRANT_PERIODS: u64 = 2 * LEASE_VALIDITY;

/// One replica of the key-value service.
///
/// Wraps a [`ReplicatedLog`] whose slots decide *batches* of `Command`s,
/// applies its decided prefix to a [`KvStore`] (one slot may ack many
/// clients), and speaks the client protocol: requests are sequenced by the
/// leader, acknowledged once applied, and redirected when this replica
/// does not consider itself the leader. Every `snapshot_interval` applied
/// slots the replica exports its store and truncates the log's decided
/// prefix behind the snapshot, which bounds memory under sustained load; a
/// replica lagging past a truncation point converges by installing a
/// peer's snapshot instead of replaying slots.
#[derive(Debug)]
pub struct SvcReplica {
    log: ReplicatedLog<OmegaProcess, Command>,
    store: KvStore,
    /// The next log slot to apply (everything below is in the store).
    cursor: u64,
    /// Apply-slot interval between snapshots (0 = never truncate).
    snapshot_interval: u64,
    /// The cursor at the last truncation (or snapshot install).
    last_snapshot: u64,
    /// Clients awaiting an ack, by `(client, seq)` → their endpoint id.
    awaiting: BTreeMap<(u64, u64), ProcessId>,
    requests: u64,
    redirects: u64,
    snapshots_taken: u64,
    /// Interval snapshots whose export outgrew the single-frame install
    /// cap (they compact all the same and are served via the chunk plane).
    oversized_snapshot_skips: u64,
    /// On-disk WAL + snapshot state; `None` runs the replica in-memory.
    durability: Option<Durability>,
    /// Optional observability hooks (metrics handles + flight-recorder
    /// tracer); `None` costs nothing on the hot path.
    obs: Option<ReplicaObs>,
    /// The lease/read-index plane (see the module docs).
    lease: LeaseState,
}

/// One read awaiting its read-index conditions at the leader.
#[derive(Debug)]
struct PendingRead {
    /// The endpoint to answer.
    from: ProcessId,
    client: u64,
    rid: u64,
    key: Vec<u8>,
    /// The decided frontier when the read arrived; the answer waits until
    /// the apply cursor covers it.
    read_index: u64,
    /// The probe round whose quorum confirms leadership for this read —
    /// always a round *sent after* the read arrived.
    confirm_rid: u64,
}

/// The lease clock and probe bookkeeping of one replica.
#[derive(Debug, Default)]
struct LeaseState {
    /// Cadence of [`TIMER_LEASE`] (the consensus ballot-check period).
    period: Duration,
    /// Local period counter — the only clock the lease logic reads.
    now: u64,
    /// Phase-1 quorum size (`n − t`), shared with the consensus layer.
    quorum: usize,
    /// Leader side: the probe round currently collecting acks.
    probe_rid: u64,
    /// Leader side: the period `probe_rid` was sent.
    probe_sent_at: u64,
    /// Leader side: replicas that granted the current round (self included
    /// implicitly).
    grants: BTreeSet<ProcessId>,
    /// Leader side: the highest probe round that reached a grant quorum.
    confirmed_rid: u64,
    /// Leader side: first period at which the lease is no longer valid
    /// (0 = no lease).
    valid_until: u64,
    /// Follower side: an open grant `(leader, first period it no longer
    /// binds)`.
    granted: Option<(ProcessId, u64)>,
    /// Reads queued on the read-index path.
    pending_reads: Vec<PendingRead>,
    reads_lease: u64,
    reads_read_index: u64,
    reads_stale: u64,
    refreshes: u64,
    expiries: u64,
}

impl LeaseState {
    /// Whether the quorum lease currently covers a leader-local read.
    fn valid(&self) -> bool {
        self.now < self.valid_until
    }
}

/// The registry handles and tracer a replica records onto once
/// [`SvcReplica::attach_obs`] ran.
#[derive(Debug)]
struct ReplicaObs {
    /// Per-slot state-machine apply latency, µs.
    apply_micros: irs_obs::HistHandle,
    /// Commands per decided batch (batch occupancy at apply time).
    batch_commands: irs_obs::HistHandle,
    /// Flight-recorder hook for WAL commits (the log layer holds its own
    /// clone for ballot/snapshot events).
    tracer: Option<irs_obs::Tracer>,
    shard: usize,
}

impl SvcReplica {
    /// Builds a replica over the paper's Figure 3 Ω algorithm with the
    /// historical tuning: unbatched, one slot in flight, compaction every
    /// 1024 applied slots.
    ///
    /// # Panics
    ///
    /// Panics if the system does not have a correct majority (`t ≥ n/2`).
    pub fn new(id: ProcessId, system: SystemConfig) -> Self {
        Self::with_tuning(id, system, 1, 1, 1024)
    }

    /// Builds a replica with explicit batching/pipelining/compaction
    /// tuning (see [`crate::SvcConfig`] for the knobs' meaning).
    ///
    /// # Panics
    ///
    /// Panics if the system does not have a correct majority (`t ≥ n/2`).
    pub fn with_tuning(
        id: ProcessId,
        system: SystemConfig,
        batch_max: usize,
        pipeline_depth: u64,
        snapshot_interval: u64,
    ) -> Self {
        assert!(
            system.supports_consensus(),
            "replication requires t < n/2 (got n = {}, t = {})",
            system.n(),
            system.t()
        );
        // The service opts into the stable-reign fast path: one reign
        // prepare per leadership, Accept-only slots from then on.
        let cfg = ConsensusConfig::new(system)
            .with_batching(batch_max, pipeline_depth)
            .with_phase1_skip(true);
        let lease = LeaseState {
            period: cfg.ballot_check_period,
            quorum: system.quorum(),
            ..LeaseState::default()
        };
        SvcReplica {
            log: ReplicatedLog::new(id, cfg, OmegaProcess::fig3(id, system)),
            store: KvStore::new(),
            cursor: 0,
            snapshot_interval,
            last_snapshot: 0,
            awaiting: BTreeMap::new(),
            requests: 0,
            redirects: 0,
            snapshots_taken: 0,
            oversized_snapshot_skips: 0,
            durability: None,
            obs: None,
            lease,
        }
    }

    /// Builds a *durable* replica: opens (or creates) the data directory,
    /// replays the snapshot file plus the WAL's valid prefix into the
    /// store and the log, and from then on persists every accepted ballot
    /// and decided slot before the round's messages leave the handler.
    /// Restarting with the same directory resumes with every promise the
    /// previous incarnation made still in force, and a state machine that
    /// is digest-identical to deterministic replay of the durable prefix.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening or replaying the directory.
    ///
    /// # Panics
    ///
    /// Panics if the system does not have a correct majority (`t ≥ n/2`).
    pub fn durable(
        id: ProcessId,
        system: SystemConfig,
        batch_max: usize,
        pipeline_depth: u64,
        snapshot_interval: u64,
        dir: &Path,
        policy: FsyncPolicy,
    ) -> std::io::Result<Self> {
        let mut replica =
            Self::with_tuning(id, system, batch_max, pipeline_depth, snapshot_interval);
        let (durability, recovered) = Durability::open(dir, policy)?;
        let log_snapshot = recovered.snapshot.as_ref().map(|(upto, blob)| {
            // A blob that passed the file checksum but fails semantic
            // validation is not one of our exports; recovery then starts
            // from the log floor alone and converges via peer catch-up.
            if let Some(store) = KvStore::install(blob) {
                replica.store = store;
                replica.cursor = *upto;
                replica.last_snapshot = *upto;
            }
            (*upto, Arc::from(blob.as_slice()))
        });
        let cfg = ConsensusConfig::new(system)
            .with_batching(batch_max, pipeline_depth)
            .with_phase1_skip(true);
        replica.log = ReplicatedLog::recover(
            id,
            cfg,
            OmegaProcess::fig3(id, system),
            log_snapshot,
            recovered.decisions,
            recovered.accepted,
        );
        replica.durability = Some(durability);
        // Apply the replayed decided prefix before any message flows; the
        // drained actions go nowhere (clients re-learn outcomes by retry).
        replica.apply_ready(&mut Actions::new());
        // Recording starts only now, so replay itself is never re-logged.
        replica.log.set_durable(true);
        Ok(replica)
    }

    /// Enables or disables the stable-reign fast path on the underlying
    /// log (on by default; see [`irs_consensus::ReplicatedLog::set_phase1_skip`]).
    /// Benchmark baselines turn it off to measure what the skip buys.
    pub fn set_phase1_skip(&mut self, enabled: bool) {
        self.log.set_phase1_skip(enabled);
    }

    /// Wires this replica into the process-wide [`irs_obs::Obs`] handle:
    /// apply-latency and batch-occupancy histograms on the registry, WAL
    /// commit/latency histograms on the durability layer, and (when `obs`
    /// carries a flight recorder) trace events for the ballot lifecycle,
    /// snapshots and WAL commits.
    pub fn attach_obs(&mut self, obs: &irs_obs::Obs) {
        let shard = self.log.id().index();
        let tracer = obs.tracer(self.log.id().index() as u32);
        if let Some(t) = tracer.clone() {
            self.log.set_tracer(t);
        }
        if let Some(d) = self.durability.as_mut() {
            d.attach_obs(obs.registry(), shard);
        }
        self.obs = Some(ReplicaObs {
            apply_micros: obs.registry().histogram(irs_obs::names::SVC_APPLY_MICROS),
            batch_commands: obs.registry().histogram(irs_obs::names::SVC_BATCH_COMMANDS),
            tracer,
            shard,
        });
    }

    /// The applied key-value state.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// The underlying replicated log.
    pub fn log(&self) -> &ReplicatedLog<OmegaProcess, Command> {
        &self.log
    }

    /// Client requests received.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests answered with a redirect.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Lifts the inner log's actions into the service message plane.
    fn lift(&self, inner: Actions<ReplicaLogMsg>, out: &mut Actions<SvcMsg>) {
        let (sends, timers, cancels) = inner.into_parts();
        for send in sends {
            match send.dest {
                Destination::To(q) => out.send(q, SvcMsg::Log(send.msg)),
                Destination::AllOthers => out.broadcast_others(SvcMsg::Log(send.msg)),
                Destination::All => out.broadcast_all(SvcMsg::Log(send.msg)),
            }
        }
        for t in timers {
            out.set_timer(t.id, t.after);
        }
        for c in cancels {
            out.cancel_timer(c);
        }
    }

    fn on_request(&mut self, from: ProcessId, cmd: &Command, out: &mut Actions<SvcMsg>) {
        self.requests += 1;
        // A command that does not parse as a KvWrite can never be applied;
        // drop it at the door (the codec's equivalent of link noise).
        let Some(w) = KvWrite::decode(cmd) else {
            return;
        };
        // `Applied` must mean "this write's effect is in the store". The
        // session filter applies per-client seqs in increasing order, so
        // only a retry of the *latest* applied write can be re-acked; a
        // request below that seq was (or will be) rejected as stale — drop
        // it silently and let the client's deadline surface the failure
        // instead of lying about success.
        if let Some((seq, slot)) = self.store.last_applied(w.client) {
            if w.seq == seq {
                out.send(
                    from,
                    SvcMsg::Reply(SvcReply::Applied {
                        client: w.client,
                        seq: w.seq,
                        slot,
                    }),
                );
                return;
            }
            if w.seq < seq {
                return;
            }
        }
        let me = self.log.id();
        let leader = self.log.leader();
        if leader != me {
            self.redirects += 1;
            out.send(
                from,
                SvcMsg::Reply(SvcReply::Redirect {
                    client: w.client,
                    seq: w.seq,
                    leader,
                }),
            );
            return;
        }
        // We lead: remember who to ack, sequence the command (once), and
        // drive the frontier slot immediately — ack latency should be
        // bounded by round trips, not by the periodic log check.
        self.awaiting.insert((w.client, w.seq), from);
        if !self.log.is_decided_value(cmd) && !self.log.contains_pending(cmd) {
            self.log.submit(cmd.clone());
        }
        let mut inner = Actions::new();
        self.log.drive(&mut inner);
        self.lift(inner, out);
    }

    /// Answers one read under its tier's guarantee (or queues it on the
    /// read-index path; see the module docs).
    fn on_read(
        &mut self,
        from: ProcessId,
        client: u64,
        rid: u64,
        key: &[u8],
        tier: ReadTier,
        out: &mut Actions<SvcMsg>,
    ) {
        self.requests += 1;
        if tier == ReadTier::Stale {
            // Any replica serves its applied prefix — committed state,
            // bounded behind the decided frontier by the apply cursor.
            self.lease.reads_stale += 1;
            self.reply_value(from, client, rid, key, out);
            return;
        }
        let me = self.log.id();
        let leader = self.log.leader();
        if leader != me {
            self.redirects += 1;
            out.send(
                from,
                SvcMsg::Reply(SvcReply::Redirect {
                    client,
                    seq: rid,
                    leader,
                }),
            );
            return;
        }
        if tier == ReadTier::Lease && self.lease.valid() {
            // The lease fast path: zero messages. Every acked write was
            // applied here before its ack left, so the local store is a
            // linearizable read point while the lease pins leadership.
            self.lease.reads_lease += 1;
            self.reply_value(from, client, rid, key, out);
            return;
        }
        // Read-index (and the lease-uncertain fallback): confirm
        // leadership with a probe round sent after this moment, then wait
        // for the apply cursor to cover today's decided frontier.
        self.lease.pending_reads.push(PendingRead {
            from,
            client,
            rid,
            key: key.to_vec(),
            read_index: self.log.frontier_slot(),
            confirm_rid: self.lease.probe_rid + 1,
        });
    }

    /// Sends the store's current binding of `key` with the apply frontier
    /// as the staleness witness.
    fn reply_value(
        &mut self,
        to: ProcessId,
        client: u64,
        rid: u64,
        key: &[u8],
        out: &mut Actions<SvcMsg>,
    ) {
        out.send(
            to,
            SvcMsg::Reply(SvcReply::Value {
                client,
                rid,
                value: self.store.get(key).map(<[u8]>::to_vec),
                frontier: self.cursor,
            }),
        );
    }

    /// One firing of the lease timer: advance the local period clock, let
    /// a leader open the next probe round, and let a deposed leader drop
    /// its lease state.
    fn on_lease_tick(&mut self, out: &mut Actions<SvcMsg>) {
        self.lease.now += 1;
        let me = self.log.id();
        if self.log.leader() == me {
            if self.lease.valid_until != 0 && !self.lease.valid() {
                self.lease.expiries += 1;
                self.lease.valid_until = 0;
            }
            self.lease.probe_rid += 1;
            self.lease.probe_sent_at = self.lease.now;
            self.lease.grants.clear();
            out.broadcast_others(SvcMsg::LeaseProbe {
                rid: self.lease.probe_rid,
            });
        } else {
            if self.lease.valid() {
                // Deposed mid-lease: the lease dies with the leadership.
                self.lease.expiries += 1;
            }
            self.lease.valid_until = 0;
            self.lease.grants.clear();
            self.redirect_pending_reads(out);
        }
        out.set_timer(TIMER_LEASE, self.lease.period);
    }

    /// A probe from `from`: grant only while our Ω output names the
    /// prober and no unexpired grant to a different leader is open. The
    /// grant window counts from *this* period — probe receipt, which
    /// follows probe send in real time (the safe side of the clock
    /// inequality).
    fn on_lease_probe(&mut self, from: ProcessId, rid: u64, out: &mut Actions<SvcMsg>) {
        let free = match self.lease.granted {
            Some((holder, until)) => holder == from || self.lease.now >= until,
            None => true,
        };
        let granted = free && self.log.leader() == from && from != self.log.id();
        if granted {
            self.lease.granted = Some((from, self.lease.now + GRANT_PERIODS));
        }
        out.send(from, SvcMsg::LeaseAck { rid, granted });
    }

    /// An ack for the current probe round. A quorum of grants (the prober
    /// counts itself) refreshes the lease — validity counted from the
    /// round's *send* period — and confirms leadership for queued
    /// read-index reads.
    fn on_lease_ack(
        &mut self,
        from: ProcessId,
        rid: u64,
        granted: bool,
        out: &mut Actions<SvcMsg>,
    ) {
        if !granted || rid != self.lease.probe_rid || self.log.leader() != self.log.id() {
            return;
        }
        self.lease.grants.insert(from);
        if self.lease.grants.len() + 1 >= self.lease.quorum && self.lease.confirmed_rid < rid {
            self.lease.confirmed_rid = rid;
            let fresh = self.lease.probe_sent_at + LEASE_VALIDITY;
            if fresh > self.lease.valid_until {
                self.lease.valid_until = fresh;
                self.lease.refreshes += 1;
            }
        }
        self.service_pending_reads(out);
    }

    /// Answers every queued read whose leadership round confirmed and
    /// whose read index the apply cursor has covered.
    fn service_pending_reads(&mut self, out: &mut Actions<SvcMsg>) {
        if self.lease.pending_reads.is_empty() {
            return;
        }
        let (confirmed, cursor) = (self.lease.confirmed_rid, self.cursor);
        let ready: Vec<PendingRead> = {
            let pending = &mut self.lease.pending_reads;
            let mut ready = Vec::new();
            let mut i = 0;
            while i < pending.len() {
                if confirmed >= pending[i].confirm_rid && cursor >= pending[i].read_index {
                    ready.push(pending.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        for r in ready {
            self.lease.reads_read_index += 1;
            self.reply_value(r.from, r.client, r.rid, &r.key, out);
        }
    }

    /// A deposed leader cannot answer its queued reads; redirect them so
    /// clients re-aim instead of waiting out their deadline.
    fn redirect_pending_reads(&mut self, out: &mut Actions<SvcMsg>) {
        let leader = self.log.leader();
        for r in self.lease.pending_reads.drain(..) {
            out.send(
                r.from,
                SvcMsg::Reply(SvcReply::Redirect {
                    client: r.client,
                    seq: r.rid,
                    leader,
                }),
            );
        }
    }

    /// Applies every newly decided contiguous slot — each slot is a batch,
    /// applied atomically in order, and may ack many clients — and drives
    /// the window forward. Snapshots are taken on the interval boundary.
    fn apply_ready(&mut self, out: &mut Actions<SvcMsg>) {
        let cursor_before = self.cursor;
        while let Some(batch) = self.log.decision(self.cursor).cloned() {
            let slot = self.cursor;
            self.cursor += 1;
            let apply_start = self.obs.as_ref().map(|_| std::time::Instant::now());
            // Unparseable commands are no-op entries; the rest go through
            // the store's one batch-apply path, with the ack bookkeeping
            // riding the per-write callback.
            let writes: Vec<KvWrite> = batch.iter().filter_map(KvWrite::decode).collect();
            let awaiting = &mut self.awaiting;
            self.store.apply_batch(slot, &writes, |w, fresh| {
                match awaiting.remove(&(w.client, w.seq)) {
                    // Ack only writes whose effect actually landed. A
                    // decided entry the session filter skipped (a stale seq
                    // overtaken by a pipelined later write, or a retry's
                    // second copy) was rejected — staying silent lets the
                    // client's deadline report it honestly instead of
                    // acking a lost write.
                    Some(client_ep) if fresh => {
                        out.send(
                            client_ep,
                            SvcMsg::Reply(SvcReply::Applied {
                                client: w.client,
                                seq: w.seq,
                                slot,
                            }),
                        );
                    }
                    _ => {}
                }
            });
            if let (Some(o), Some(t0)) = (&self.obs, apply_start) {
                o.apply_micros
                    .record(o.shard, t0.elapsed().as_micros() as u64);
                o.batch_commands.record(o.shard, batch.len() as u64);
            }
        }
        if self.cursor > cursor_before {
            self.maybe_snapshot();
            let mut inner = Actions::new();
            self.log.drive(&mut inner);
            self.lift(inner, out);
        }
    }

    /// Exports the store and truncates the log once enough slots have been
    /// applied since the last snapshot. Compaction *always* proceeds — an
    /// export too large for one `SnapshotInstall` frame is served to
    /// laggards via the chunk plane instead, and is counted (plus logged,
    /// at most once per interval since that is how often this runs) so the
    /// regime is observable rather than a silent stall that used to retain
    /// the whole decided log.
    fn maybe_snapshot(&mut self) {
        if self.snapshot_interval == 0 || self.cursor < self.last_snapshot + self.snapshot_interval
        {
            return;
        }
        self.last_snapshot = self.cursor;
        let blob = self.store.export();
        if blob.len() > MAX_SNAPSHOT_LEN {
            self.oversized_snapshot_skips += 1;
            eprintln!(
                "[irs-svc] replica {}: snapshot at slot {} is {} bytes > {} single-frame cap; serving it chunked",
                self.log.id(),
                self.cursor,
                blob.len(),
                MAX_SNAPSHOT_LEN,
            );
        }
        self.log.truncate_below(self.cursor, blob.as_slice());
        self.snapshots_taken += 1;
        self.persist_snapshot(self.cursor, &blob);
    }

    /// Writes the snapshot file and rotates the WAL down to the log's live
    /// tail. A durability failure is fatal: continuing would silently void
    /// the persist-before-send contract.
    fn persist_snapshot(&mut self, upto: u64, blob: &[u8]) {
        let Some(d) = self.durability.as_mut() else {
            return;
        };
        // Events recorded earlier in this handler round are subsumed by
        // the rotation seed (sub-floor ones by the blob itself).
        let _ = self.log.take_wal_events();
        d.install_snapshot(upto, blob, self.log.retained(), self.log.accepted_states())
            .expect("persist snapshot + rotate WAL");
    }

    /// Commits this handler round's durability events. Runs at the end of
    /// every handler, before the runtime releases the round's outbound
    /// frames — persist-before-send.
    fn persist(&mut self) {
        if self.durability.is_none() {
            return;
        }
        let events = self.log.take_wal_events();
        if let Some(d) = self.durability.as_mut() {
            let syncs_before = d.syncs();
            d.append_events(&events).expect("append to WAL");
            if !events.is_empty() {
                if let Some(t) = self.obs.as_ref().and_then(|o| o.tracer.as_ref()) {
                    let fsynced = u64::from(d.syncs() > syncs_before);
                    t.emit_now(irs_obs::EventKind::WalCommit, events.len() as u64, fsynced);
                }
            }
        }
    }

    /// Adopts a snapshot a peer sent us (we lag past its truncation point):
    /// validate the blob, replace the store, jump the cursor, and confirm
    /// the install to the log. A blob that fails validation is dropped —
    /// the log stays where it was and per-slot catch-up keeps trying.
    fn maybe_install(&mut self) {
        let Some((upto, blob)) = self.log.take_pending_install() else {
            return;
        };
        if upto <= self.cursor {
            return;
        }
        let Some(restored) = KvStore::install(&blob) else {
            return;
        };
        self.store = restored;
        self.cursor = upto;
        self.last_snapshot = upto;
        self.log.complete_install(upto, blob.clone());
        self.persist_snapshot(upto, &blob);
        // Anything we still owed an ack for is covered (or superseded) by
        // the snapshot; falling far enough behind to need an install means
        // those clients gave up on us long ago. A retry of a client's
        // latest applied write still re-acks via `last_applied`.
        self.awaiting.clear();
    }
}

impl Protocol for SvcReplica {
    type Msg = SvcMsg;

    fn id(&self) -> ProcessId {
        self.log.id()
    }

    fn on_start(&mut self, out: &mut Actions<Self::Msg>) {
        let mut inner = Actions::new();
        self.log.on_start(&mut inner);
        self.lift(inner, out);
        out.set_timer(TIMER_LEASE, self.lease.period);
    }

    fn on_message(&mut self, from: ProcessId, msg: &Self::Msg, out: &mut Actions<Self::Msg>) {
        match msg {
            SvcMsg::Log(m) => {
                let mut inner = Actions::new();
                self.log.on_message(from, m, &mut inner);
                self.lift(inner, out);
            }
            SvcMsg::Request { cmd } => self.on_request(from, cmd, out),
            SvcMsg::Read {
                client,
                rid,
                key,
                tier,
            } => self.on_read(from, *client, *rid, key, *tier, out),
            SvcMsg::LeaseProbe { rid } => self.on_lease_probe(from, *rid, out),
            SvcMsg::LeaseAck { rid, granted } => self.on_lease_ack(from, *rid, *granted, out),
            // Replies are client-plane messages; at a replica they are
            // stray traffic.
            SvcMsg::Reply(_) => {}
        }
        self.maybe_install();
        self.apply_ready(out);
        self.service_pending_reads(out);
        self.persist();
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Actions<Self::Msg>) {
        if timer == TIMER_LEASE {
            self.on_lease_tick(out);
        } else {
            let mut inner = Actions::new();
            self.log.on_timer(timer, &mut inner);
            self.lift(inner, out);
        }
        self.maybe_install();
        self.apply_ready(out);
        self.service_pending_reads(out);
        self.persist();
    }
}

impl LeaderOracle for SvcReplica {
    fn leader(&self) -> ProcessId {
        self.log.leader()
    }
}

impl Introspect for SvcReplica {
    fn snapshot(&self) -> Snapshot {
        use irs_obs::names;
        let mut snap = self.log.snapshot();
        snap.extra.push((names::APPLIED, self.store.applied()));
        snap.extra
            .push((names::KV_ENTRIES, self.store.len() as u64));
        snap.extra.push((names::KV_DIGEST, self.store.digest()));
        snap.extra.push((names::DUP_SKIPS, self.store.dup_skips()));
        snap.extra
            .push((names::AWAITING, self.awaiting.len() as u64));
        snap.extra.push((names::REQUESTS, self.requests));
        snap.extra.push((names::REDIRECTS, self.redirects));
        snap.extra
            .push((names::SNAPSHOTS_TAKEN, self.snapshots_taken));
        snap.extra.push((
            names::OVERSIZED_SNAPSHOT_SKIPS,
            self.oversized_snapshot_skips,
        ));
        snap.extra
            .push((names::READS_LEASE, self.lease.reads_lease));
        snap.extra
            .push((names::READS_READ_INDEX, self.lease.reads_read_index));
        snap.extra
            .push((names::READS_STALE, self.lease.reads_stale));
        snap.extra
            .push((names::LEASE_REFRESHES, self.lease.refreshes));
        snap.extra
            .push((names::LEASE_EXPIRIES, self.lease.expiries));
        let d = self.durability.as_ref();
        snap.extra
            .push((names::WAL_APPENDED, d.map_or(0, |d| d.appended())));
        snap.extra
            .push((names::WAL_SYNCS, d.map_or(0, |d| d.syncs())));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::KvOp;
    use irs_consensus::LogMsg;

    fn system() -> SystemConfig {
        SystemConfig::new(5, 2).unwrap()
    }

    fn write(client: u64, seq: u64) -> KvWrite {
        KvWrite {
            client,
            seq,
            op: KvOp::Put {
                key: format!("k{client}").into_bytes(),
                value: seq.to_le_bytes().to_vec(),
            },
        }
    }

    /// Routes service messages among replicas until quiescence (timers are
    /// not modelled; the caller fires them explicitly). Sends addressed to
    /// endpoints outside the replica group — client acks — are returned.
    fn route(
        replicas: &mut [SvcReplica],
        mut pending: Vec<(ProcessId, Actions<SvcMsg>)>,
    ) -> Vec<(ProcessId, SvcMsg)> {
        let n = replicas.len();
        let mut to_clients = Vec::new();
        while let Some((from, actions)) = pending.pop() {
            let (sends, _, _) = actions.into_parts();
            for send in sends {
                let targets: Vec<usize> = match send.dest {
                    Destination::To(q) if q.index() < n => vec![q.index()],
                    Destination::To(q) => {
                        to_clients.push((q, send.msg));
                        continue;
                    }
                    Destination::AllOthers => (0..n).filter(|i| *i != from.index()).collect(),
                    Destination::All => (0..n).collect(),
                };
                for t in targets {
                    let mut out = Actions::new();
                    replicas[t].on_message(from, &send.msg, &mut out);
                    pending.push((ProcessId::new(t as u32), out));
                }
            }
        }
        to_clients
    }

    #[test]
    fn leader_sequences_applies_and_acks_a_request() {
        let mut replicas: Vec<SvcReplica> = (0..5)
            .map(|i| SvcReplica::new(ProcessId::new(i), system()))
            .collect();
        // p1 is the initial Ω leader. A client at endpoint 7 asks it to put.
        let client_ep = ProcessId::new(7);
        let cmd = write(7, 1).encode();
        let mut out = Actions::new();
        replicas[0].on_message(client_ep, &SvcMsg::Request { cmd }, &mut out);
        // The event-driven fast path acts right on request arrival — no
        // waiting for the periodic log check. With the phase-1 skip on,
        // the first request opens the reign prepare (slot ballots follow
        // Accept-only once a promise quorum answers).
        assert!(
            out.sends()
                .iter()
                .any(|s| matches!(s.msg, SvcMsg::Log(LogMsg::PrepareReign { .. }))),
            "request arrival must open the reign: {:?}",
            out.sends().len()
        );
        assert_eq!(replicas[0].log.pending_len(), 1);
        // Message routing then decides and applies everywhere and acks the
        // client.
        let acks = route(&mut replicas, vec![(ProcessId::new(0), out)]);
        for r in &replicas {
            assert_eq!(r.store().applied(), 1, "replica {} lags", r.id());
            assert_eq!(r.store().get(b"k7"), Some(1u64.to_le_bytes().as_slice()));
        }
        let applied_acks: Vec<_> = acks
            .iter()
            .filter(|(to, msg)| {
                *to == client_ep
                    && matches!(
                        msg,
                        SvcMsg::Reply(SvcReply::Applied {
                            client: 7,
                            seq: 1,
                            slot: 0
                        })
                    )
            })
            .collect();
        assert_eq!(applied_acks.len(), 1, "exactly one ack: {acks:?}");
    }

    #[test]
    fn non_leader_redirects_to_its_oracle_output() {
        let mut replica = SvcReplica::new(ProcessId::new(3), system());
        let mut out = Actions::new();
        replica.on_message(
            ProcessId::new(9),
            &SvcMsg::Request {
                cmd: write(9, 1).encode(),
            },
            &mut out,
        );
        assert_eq!(out.sends().len(), 1);
        assert!(matches!(
            out.sends()[0].msg,
            SvcMsg::Reply(SvcReply::Redirect { client: 9, seq: 1, leader }) if leader == ProcessId::new(0)
        ));
        assert_eq!(replica.redirects(), 1);
        assert_eq!(replica.log.pending_len(), 0);
    }

    #[test]
    fn applied_retry_is_acked_immediately_without_resequencing() {
        let mut replica = SvcReplica::new(ProcessId::new(0), system());
        let w = write(4, 1);
        // Pretend the write is already decided and applied.
        replica.store.apply(0, &w);
        let mut out = Actions::new();
        replica.on_message(
            ProcessId::new(9),
            &SvcMsg::Request { cmd: w.encode() },
            &mut out,
        );
        assert_eq!(out.sends().len(), 1);
        assert!(matches!(
            out.sends()[0].msg,
            SvcMsg::Reply(SvcReply::Applied {
                client: 4,
                seq: 1,
                slot: 0
            })
        ));
        assert_eq!(replica.log.pending_len(), 0, "no duplicate sequencing");
    }

    /// `Applied` must never be sent for a write whose effect did not land:
    /// a request below the client's last applied seq is a write the session
    /// filter rejected (or will reject) — it gets silence, not a false ack,
    /// and a decided-but-skipped entry is likewise never acked.
    #[test]
    fn stale_writes_are_never_acked_as_applied() {
        let mut replica = SvcReplica::new(ProcessId::new(0), system());
        replica.store.apply(0, &write(4, 1));
        replica.store.apply(1, &write(4, 2));
        // Request for seq 1 < last applied 2: dropped, not acked.
        let mut out = Actions::new();
        replica.on_message(
            ProcessId::new(9),
            &SvcMsg::Request {
                cmd: write(4, 1).encode(),
            },
            &mut out,
        );
        assert!(out.sends().is_empty(), "stale request must get silence");
        // A decided entry the store skips as stale is not acked either,
        // even with a client awaiting it.
        replica.awaiting.insert((4, 1), ProcessId::new(9));
        let mut out = Actions::new();
        // Force the decision through the log's own path: decide slot 0 of
        // a fresh instance view via note-decision-equivalent message flow
        // is heavy here, so emulate apply_ready directly.
        replica.cursor = 2;
        replica.log.on_message(
            ProcessId::new(1),
            &irs_consensus::LogMsg::Slot {
                slot: 2,
                msg: irs_consensus::PaxosMsg::Decide {
                    v: irs_consensus::Batch::one(write(4, 1).encode()),
                },
            },
            &mut Actions::new(),
        );
        replica.apply_ready(&mut out);
        assert!(
            out.sends().is_empty(),
            "skipped stale decision must not be acked: {:?}",
            out.sends().len()
        );
        assert_eq!(replica.store.dup_skips(), 1);
        assert!(replica.awaiting.is_empty(), "awaiting entry is retired");
    }

    #[test]
    fn unparseable_commands_are_dropped_at_the_door() {
        let mut replica = SvcReplica::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        replica.on_message(
            ProcessId::new(9),
            &SvcMsg::Request {
                cmd: Command::new(vec![0xFF; 7]),
            },
            &mut out,
        );
        assert!(out.sends().is_empty());
        assert_eq!(replica.log.pending_len(), 0);
        // A stray Reply at a replica is ignored too.
        replica.on_message(
            ProcessId::new(1),
            &SvcMsg::Reply(SvcReply::Applied {
                client: 0,
                seq: 0,
                slot: 0,
            }),
            &mut out,
        );
        assert!(out.sends().is_empty());
    }

    #[test]
    fn snapshot_exposes_service_gauges() {
        let replica = SvcReplica::new(ProcessId::new(2), system());
        let snap = replica.snapshot();
        for gauge in [
            "applied",
            "kv_entries",
            "kv_digest",
            "dup_skips",
            "awaiting",
            "requests",
            "redirects",
            "snapshots_taken",
            "oversized_snapshot_skips",
            "reads_lease",
            "reads_read_index",
            "reads_stale",
            "lease_refreshes",
            "lease_expiries",
            "wal_appended",
            "wal_syncs",
            "retained_decisions",
            "compact_floor",
            "snapshot_installs",
        ] {
            assert!(snap.gauge(gauge).is_some(), "missing gauge {gauge}");
        }
    }

    /// One batched slot decision applies every command in order and acks
    /// every awaiting client — many acks per decision.
    #[test]
    fn a_batched_decision_acks_every_client_in_the_slot() {
        let mut replica = SvcReplica::with_tuning(ProcessId::new(0), system(), 8, 2, 0);
        let (w1, w2, w3) = (write(7, 1), write(8, 1), write(9, 1));
        replica.awaiting.insert((7, 1), ProcessId::new(7));
        replica.awaiting.insert((8, 1), ProcessId::new(8));
        replica.awaiting.insert((9, 1), ProcessId::new(9));
        replica.log.on_message(
            ProcessId::new(1),
            &irs_consensus::LogMsg::Slot {
                slot: 0,
                msg: irs_consensus::PaxosMsg::Decide {
                    v: irs_consensus::Batch::new(vec![w1.encode(), w2.encode(), w3.encode()]),
                },
            },
            &mut Actions::new(),
        );
        let mut out = Actions::new();
        replica.apply_ready(&mut out);
        assert_eq!(replica.store.applied(), 3, "whole batch applied in order");
        let acks: Vec<u64> = out
            .sends()
            .iter()
            .filter_map(|s| match s.msg {
                SvcMsg::Reply(SvcReply::Applied {
                    client, slot: 0, ..
                }) => Some(client),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![7, 8, 9], "one ack per batched write");
        assert!(replica.awaiting.is_empty());
    }

    /// The compaction-stall regression: an export too large for one
    /// install frame used to be silently dropped, leaving the whole
    /// decided log retained. It must now compact anyway, count the
    /// oversized export, and keep the blob servable (chunked).
    #[test]
    fn oversized_exports_still_compact_and_are_counted() {
        let mut replica = SvcReplica::with_tuning(ProcessId::new(0), system(), 1, 1, 8);
        // ~56 KiB of state: 72 keys × 800-byte values (commands stay under
        // the command/value caps; the export outgrows MAX_SNAPSHOT_LEN).
        for slot in 0..72u64 {
            let w = KvWrite {
                client: 7,
                seq: slot + 1,
                op: KvOp::Put {
                    key: format!("key-{slot:04}").into_bytes(),
                    value: vec![slot as u8; 800],
                },
            };
            replica.log.on_message(
                ProcessId::new(1),
                &irs_consensus::LogMsg::Slot {
                    slot,
                    msg: irs_consensus::PaxosMsg::Decide {
                        v: irs_consensus::Batch::one(w.encode()),
                    },
                },
                &mut Actions::new(),
            );
            replica.apply_ready(&mut Actions::new());
        }
        assert!(
            replica.store.export().len() > MAX_SNAPSHOT_LEN,
            "test state must outgrow the single-frame cap"
        );
        assert!(
            replica.oversized_snapshot_skips >= 1,
            "oversized exports are counted"
        );
        assert!(
            replica.log.retained_decisions() <= 8,
            "compaction must proceed past the cap, not stall: {} slots retained",
            replica.log.retained_decisions()
        );
        assert_eq!(replica.cursor, 72);
        // The oversized blob is the log's servable snapshot (chunk plane).
        let snap = replica.snapshot();
        assert_eq!(
            snap.gauge("oversized_snapshot_skips"),
            Some(replica.oversized_snapshot_skips)
        );
        assert!(snap.gauge("compact_floor").unwrap() >= 64);
    }

    // ---- The lease/read plane ----

    /// Fires the lease timer once and returns what went out.
    fn lease_tick(replica: &mut SvcReplica) -> Actions<SvcMsg> {
        let mut out = Actions::new();
        replica.on_timer(TIMER_LEASE, &mut out);
        out
    }

    /// Grants the current probe round from `granters` (enough for quorum
    /// with n = 5, t = 2 when two grant).
    fn grant_round(replica: &mut SvcReplica, rid: u64, granters: &[u32]) -> Actions<SvcMsg> {
        let mut out = Actions::new();
        for &g in granters {
            replica.on_message(
                ProcessId::new(g),
                &SvcMsg::LeaseAck { rid, granted: true },
                &mut out,
            );
        }
        out
    }

    fn read_msg(client: u64, rid: u64, key: &[u8], tier: crate::msg::ReadTier) -> SvcMsg {
        SvcMsg::Read {
            client,
            rid,
            key: key.to_vec(),
            tier,
        }
    }

    /// The lease fast path: a probe round broadcast on the timer, a grant
    /// quorum refreshing the lease, then a lease-tier read answered
    /// locally with zero extra messages.
    #[test]
    fn a_granted_lease_serves_leader_reads_locally() {
        use crate::msg::ReadTier;
        let mut leader = SvcReplica::new(ProcessId::new(0), system());
        leader.store.apply(0, &write(7, 1));
        leader.cursor = 1;
        let out = lease_tick(&mut leader);
        assert!(
            out.sends()
                .iter()
                .any(|s| matches!(s.msg, SvcMsg::LeaseProbe { rid: 1 })
                    && matches!(s.dest, Destination::AllOthers)),
            "the leader opens probe round 1 on the first tick"
        );
        assert!(!leader.lease.valid(), "no quorum yet");
        grant_round(&mut leader, 1, &[1, 2]);
        assert!(leader.lease.valid(), "two grants + self = quorum of 3");
        assert_eq!(leader.lease.refreshes, 1);
        let mut out = Actions::new();
        leader.on_message(
            ProcessId::new(9),
            &read_msg(7, 5, b"k7", ReadTier::Lease),
            &mut out,
        );
        let values: Vec<_> = out
            .sends()
            .iter()
            .filter_map(|s| match &s.msg {
                SvcMsg::Reply(SvcReply::Value {
                    client: 7,
                    rid: 5,
                    value,
                    frontier,
                }) => Some((value.clone(), *frontier)),
                _ => None,
            })
            .collect();
        assert_eq!(
            values,
            vec![(Some(1u64.to_le_bytes().to_vec()), 1)],
            "served immediately from the applied store"
        );
        assert_eq!(leader.lease.reads_lease, 1);
        assert_eq!(leader.lease.reads_read_index, 0);
    }

    /// A lease-tier read under an uncertain lease degrades to the
    /// read-index path: queued until a probe round *started after the
    /// read* reaches a grant quorum and the cursor covers the read index.
    #[test]
    fn an_uncertain_lease_falls_back_to_a_read_index_round() {
        use crate::msg::ReadTier;
        let mut leader = SvcReplica::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        leader.on_message(
            ProcessId::new(9),
            &read_msg(9, 1, b"nope", ReadTier::Lease),
            &mut out,
        );
        assert!(
            out.sends().is_empty(),
            "no lease yet: the read must wait, not answer early"
        );
        assert_eq!(leader.lease.pending_reads.len(), 1);
        // The next probe round confirms leadership after the read arrived.
        lease_tick(&mut leader);
        let out = grant_round(&mut leader, 1, &[1, 2]);
        let answered = out.sends().iter().any(|s| {
            matches!(
                &s.msg,
                SvcMsg::Reply(SvcReply::Value {
                    client: 9,
                    rid: 1,
                    value: None,
                    ..
                })
            )
        });
        assert!(answered, "confirmed round answers the queued read");
        assert_eq!(leader.lease.reads_read_index, 1);
        assert!(leader.lease.pending_reads.is_empty());
    }

    /// An explicitly read-index read takes the quorum round even while a
    /// lease is live — the caller asked for the always-coordinated tier.
    #[test]
    fn read_index_tier_always_takes_the_quorum_round() {
        use crate::msg::ReadTier;
        let mut leader = SvcReplica::new(ProcessId::new(0), system());
        lease_tick(&mut leader);
        grant_round(&mut leader, 1, &[1, 2]);
        assert!(leader.lease.valid());
        let mut out = Actions::new();
        leader.on_message(
            ProcessId::new(9),
            &read_msg(9, 2, b"k", ReadTier::ReadIndex),
            &mut out,
        );
        assert_eq!(leader.lease.pending_reads.len(), 1, "queued, not served");
        lease_tick(&mut leader);
        let out = grant_round(&mut leader, 2, &[1, 2]);
        assert!(out
            .sends()
            .iter()
            .any(|s| matches!(&s.msg, SvcMsg::Reply(SvcReply::Value { rid: 2, .. }))));
        assert_eq!(leader.lease.reads_read_index, 1);
    }

    /// An unrefreshed lease expires after its validity window, is counted,
    /// and lease-tier reads queue again instead of serving stale
    /// leadership.
    #[test]
    fn an_unrefreshed_lease_expires_and_stops_serving() {
        use crate::msg::ReadTier;
        let mut leader = SvcReplica::new(ProcessId::new(0), system());
        lease_tick(&mut leader);
        grant_round(&mut leader, 1, &[1, 2]);
        assert!(leader.lease.valid());
        // Validity is counted from the send period; ticking past it with
        // no further grants must expire the lease.
        for _ in 0..=LEASE_VALIDITY {
            lease_tick(&mut leader);
        }
        assert!(!leader.lease.valid());
        assert_eq!(leader.lease.expiries, 1);
        let mut out = Actions::new();
        leader.on_message(
            ProcessId::new(9),
            &read_msg(9, 3, b"k", ReadTier::Lease),
            &mut out,
        );
        assert!(out.sends().is_empty(), "expired lease must not serve");
        assert_eq!(leader.lease.pending_reads.len(), 1);
        assert_eq!(leader.lease.reads_lease, 0);
    }

    /// Followers grant only their own Ω leader output, and replicas never
    /// probe for themselves.
    #[test]
    fn followers_grant_only_their_omega_leader() {
        let mut follower = SvcReplica::new(ProcessId::new(3), system());
        // p1 (id 0) is the initial Ω output everywhere.
        let mut out = Actions::new();
        follower.on_message(ProcessId::new(0), &SvcMsg::LeaseProbe { rid: 1 }, &mut out);
        assert!(out.sends().iter().any(|s| matches!(
            s.msg,
            SvcMsg::LeaseAck {
                rid: 1,
                granted: true
            }
        )));
        // A probe from a non-leader is acked but not granted.
        let mut out = Actions::new();
        follower.on_message(ProcessId::new(2), &SvcMsg::LeaseProbe { rid: 4 }, &mut out);
        assert!(out.sends().iter().any(|s| matches!(
            s.msg,
            SvcMsg::LeaseAck {
                rid: 4,
                granted: false
            }
        )));
        assert_eq!(
            follower.lease.granted,
            Some((ProcessId::new(0), GRANT_PERIODS))
        );
    }

    /// Linearizable tiers redirect at non-leaders; the stale tier answers
    /// anywhere.
    #[test]
    fn non_leaders_redirect_linearizable_reads_but_serve_stale_ones() {
        use crate::msg::ReadTier;
        let mut follower = SvcReplica::new(ProcessId::new(3), system());
        for tier in [ReadTier::Lease, ReadTier::ReadIndex] {
            let mut out = Actions::new();
            follower.on_message(ProcessId::new(9), &read_msg(9, 1, b"k", tier), &mut out);
            assert!(
                out.sends().iter().any(|s| matches!(
                    s.msg,
                    SvcMsg::Reply(SvcReply::Redirect { client: 9, seq: 1, leader })
                        if leader == ProcessId::new(0)
                )),
                "{tier:?} must redirect at a follower"
            );
        }
        let mut out = Actions::new();
        follower.on_message(
            ProcessId::new(9),
            &read_msg(9, 2, b"k", ReadTier::Stale),
            &mut out,
        );
        assert!(out.sends().iter().any(|s| matches!(
            &s.msg,
            SvcMsg::Reply(SvcReply::Value {
                client: 9,
                rid: 2,
                value: None,
                frontier: 0,
            })
        )));
        assert_eq!(follower.lease.reads_stale, 1);
    }

    /// The stale-tier staleness bound: the answer reflects exactly the
    /// applied prefix — a write that is pending (submitted, undecided) or
    /// decided-but-unapplied is never visible, and the frontier witness
    /// equals the apply cursor.
    #[test]
    fn stale_reads_are_bounded_by_the_apply_frontier() {
        use crate::msg::ReadTier;
        let mut replica = SvcReplica::new(ProcessId::new(0), system());
        // Slot 0 decided and applied: k7 = 1.
        replica.log.on_message(
            ProcessId::new(1),
            &irs_consensus::LogMsg::Slot {
                slot: 0,
                msg: irs_consensus::PaxosMsg::Decide {
                    v: irs_consensus::Batch::one(write(7, 1).encode()),
                },
            },
            &mut Actions::new(),
        );
        replica.apply_ready(&mut Actions::new());
        // A newer write of the same key is in flight but NOT decided.
        replica.log.submit(write(7, 2).encode());
        let mut out = Actions::new();
        replica.on_message(
            ProcessId::new(9),
            &read_msg(9, 8, b"k7", ReadTier::Stale),
            &mut out,
        );
        let answer = out
            .sends()
            .iter()
            .find_map(|s| match &s.msg {
                SvcMsg::Reply(SvcReply::Value {
                    rid: 8,
                    value,
                    frontier,
                    ..
                }) => Some((value.clone(), *frontier)),
                _ => None,
            })
            .expect("stale read answered");
        assert_eq!(
            answer.0,
            Some(1u64.to_le_bytes().to_vec()),
            "the unacked in-flight write (seq 2) must not be visible"
        );
        assert_eq!(answer.1, 1, "frontier witness = apply cursor");
        assert!(answer.1 <= replica.log.frontier_slot());
    }

    /// The replica-level snapshot flow: an interval-triggered truncation at
    /// a loaded replica, then a wiped replica adopting the snapshot via the
    /// host-mediated install path.
    #[test]
    fn snapshots_truncate_and_install_across_replicas() {
        let mut loaded = SvcReplica::with_tuning(ProcessId::new(0), system(), 1, 1, 4);
        for seq in 1..=10u64 {
            loaded.log.on_message(
                ProcessId::new(1),
                &irs_consensus::LogMsg::Slot {
                    slot: seq - 1,
                    msg: irs_consensus::PaxosMsg::Decide {
                        v: irs_consensus::Batch::one(write(7, seq).encode()),
                    },
                },
                &mut Actions::new(),
            );
            loaded.apply_ready(&mut Actions::new());
        }
        assert!(loaded.snapshots_taken >= 2, "interval 4 over 10 slots");
        assert!(
            loaded.log.retained_decisions() <= 4,
            "decided prefix truncated behind the snapshot"
        );
        // A wiped replica asks to catch up from slot 0 — below the floor —
        // and converges by install, ending digest-identical.
        let mut wiped = SvcReplica::with_tuning(ProcessId::new(3), system(), 1, 1, 4);
        let mut answer = Actions::new();
        loaded.on_message(
            ProcessId::new(3),
            &SvcMsg::Log(irs_consensus::LogMsg::Catchup { from: 0 }),
            &mut answer,
        );
        assert!(
            answer.sends().iter().any(|s| matches!(
                s.msg,
                SvcMsg::Log(irs_consensus::LogMsg::SnapshotInstall { .. })
            )),
            "sub-floor catch-up is served as an install"
        );
        for send in answer.sends() {
            wiped.on_message(ProcessId::new(0), &send.msg, &mut Actions::new());
        }
        assert_eq!(wiped.store.digest(), loaded.store.digest());
        assert_eq!(wiped.store.map(), loaded.store.map());
        assert_eq!(wiped.cursor, loaded.cursor);
        assert_eq!(wiped.store.last_applied(7), Some((10, 9)));
    }
}
