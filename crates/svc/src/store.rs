//! The deterministic key-value state machine.
//!
//! A [`KvStore`] is a pure function of the decided log prefix: replicas
//! apply entries in slot order, and the per-client sequence filter makes
//! the application exactly-once under client retries. Because both the
//! order (the log) and the filter (a function of the log alone) are
//! identical everywhere, any two replicas that applied the same prefix hold
//! byte-identical state — [`KvStore::digest`] is the cheap witness the
//! consistency experiments compare.

use crate::command::{KvOp, KvWrite};
use std::collections::BTreeMap;

/// The applied key-value state of one replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Per client: the last applied `(seq, slot)`.
    last: BTreeMap<u64, (u64, u64)>,
    applied: u64,
    dup_skips: u64,
    /// Incrementally maintained state digest: the wrapping sum of one
    /// FNV-1a hash per live binding and per client cursor (a multiset
    /// hash, so it is order-independent and supports O(1) update on
    /// insert/overwrite/remove). Snapshots publish the digest after every
    /// applied frame; recomputing over the whole map there would make each
    /// consensus message O(store size).
    digest_acc: u64,
}

/// Domain-separated hash of one `key → value` binding.
fn binding_hash(key: &[u8], value: &[u8]) -> u64 {
    let mut h = irs_types::Fnv64::new();
    h.write(b"kv");
    h.write(key);
    h.write(&[0xff]);
    h.write(value);
    h.finish()
}

/// Domain-separated hash of one client's `(seq, slot)` cursor.
fn cursor_hash(client: u64, seq: u64, slot: u64) -> u64 {
    let mut h = irs_types::Fnv64::new();
    h.write(b"cur");
    h.write(&client.to_le_bytes());
    h.write(&seq.to_le_bytes());
    h.write(&slot.to_le_bytes());
    h.finish()
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the write decided in `slot`. Returns `false` (and mutates
    /// nothing but the duplicate counter) when the write is a retry
    /// duplicate — its `seq` does not exceed the client's last applied one.
    pub fn apply(&mut self, slot: u64, w: &KvWrite) -> bool {
        if let Some(&(seq, _)) = self.last.get(&w.client) {
            if w.seq <= seq {
                self.dup_skips += 1;
                return false;
            }
        }
        match &w.op {
            KvOp::Put { key, value } => {
                if let Some(old) = self.map.insert(key.clone(), value.clone()) {
                    self.digest_acc = self.digest_acc.wrapping_sub(binding_hash(key, &old));
                }
                self.digest_acc = self.digest_acc.wrapping_add(binding_hash(key, value));
            }
            KvOp::Del { key } => {
                if let Some(old) = self.map.remove(key) {
                    self.digest_acc = self.digest_acc.wrapping_sub(binding_hash(key, &old));
                }
            }
        }
        if let Some((old_seq, old_slot)) = self.last.insert(w.client, (w.seq, slot)) {
            self.digest_acc = self
                .digest_acc
                .wrapping_sub(cursor_hash(w.client, old_seq, old_slot));
        }
        self.digest_acc = self
            .digest_acc
            .wrapping_add(cursor_hash(w.client, w.seq, slot));
        self.applied += 1;
        true
    }

    /// Reads a key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no key is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Writes applied (duplicates excluded).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Retry duplicates skipped by the sequence filter.
    pub fn dup_skips(&self) -> u64 {
        self.dup_skips
    }

    /// The last applied `(seq, slot)` of a client, if any.
    pub fn last_applied(&self, client: u64) -> Option<(u64, u64)> {
        self.last.get(&client).copied()
    }

    /// The full map (for whole-state comparison in tests).
    pub fn map(&self) -> &BTreeMap<Vec<u8>, Vec<u8>> {
        &self.map
    }

    /// A 64-bit witness of the applied state — one FNV-1a hash per live
    /// binding and per client cursor, folded order-independently: two
    /// replicas with equal digests applied the same effective writes.
    /// O(1): the accumulator is maintained incrementally by
    /// [`KvStore::apply`], so per-frame snapshot publication stays cheap
    /// regardless of store size.
    pub fn digest(&self) -> u64 {
        self.digest_acc
    }

    /// Applies a whole decided batch in order, returning how many writes
    /// were fresh (the rest were retry duplicates). `on_applied` is invoked
    /// once per write with whether its effect landed — the replica's ack
    /// bookkeeping rides it, so this is the one batch-apply path both
    /// production (`SvcReplica::apply_ready`) and the digest-equivalence
    /// proptest exercise. Digest-identical to applying the writes singly.
    pub fn apply_batch<'a>(
        &mut self,
        slot: u64,
        writes: impl IntoIterator<Item = &'a KvWrite>,
        mut on_applied: impl FnMut(&KvWrite, bool),
    ) -> u64 {
        let mut fresh = 0u64;
        for w in writes {
            let applied = self.apply(slot, w);
            fresh += u64::from(applied);
            on_applied(w, applied);
        }
        fresh
    }

    /// Serializes the applied state into an opaque snapshot blob: the live
    /// bindings, the per-client cursors, and the applied counter — enough
    /// for [`KvStore::install`] to reconstruct a store that is
    /// digest-identical and gauge-identical to this one. Deterministic
    /// (`BTreeMap` order), so two replicas with equal state export equal
    /// blobs.
    pub fn export(&self) -> Vec<u8> {
        use irs_net::wire::{put_u32, put_u64};
        let mut buf = Vec::new();
        put_u64(&mut buf, self.applied);
        put_u32(&mut buf, self.map.len() as u32);
        for (key, value) in &self.map {
            put_u32(&mut buf, key.len() as u32);
            buf.extend_from_slice(key);
            put_u32(&mut buf, value.len() as u32);
            buf.extend_from_slice(value);
        }
        put_u32(&mut buf, self.last.len() as u32);
        for (&client, &(seq, slot)) in &self.last {
            put_u64(&mut buf, client);
            put_u64(&mut buf, seq);
            put_u64(&mut buf, slot);
        }
        buf
    }

    /// Reconstructs a store from an exported snapshot blob, recomputing the
    /// order-independent digest from the installed content (so a corrupted
    /// blob cannot smuggle in a digest that does not match its state).
    /// Returns `None` on any malformed input — a snapshot crosses the wire,
    /// so it is untrusted.
    pub fn install(blob: &[u8]) -> Option<KvStore> {
        let mut r = irs_net::wire::WireReader::new(blob);
        let mut store = KvStore::new();
        store.applied = r.u64().ok()?;
        let bindings = r.u32().ok()?;
        for _ in 0..bindings {
            let key_len = r.u32().ok()? as usize;
            let key = r.take(key_len).ok()?.to_vec();
            let value_len = r.u32().ok()? as usize;
            let value = r.take(value_len).ok()?.to_vec();
            store.digest_acc = store.digest_acc.wrapping_add(binding_hash(&key, &value));
            if store.map.insert(key, value).is_some() {
                return None; // duplicate keys: not one of our exports
            }
        }
        let cursors = r.u32().ok()?;
        for _ in 0..cursors {
            let client = r.u64().ok()?;
            let seq = r.u64().ok()?;
            let slot = r.u64().ok()?;
            store.digest_acc = store
                .digest_acc
                .wrapping_add(cursor_hash(client, seq, slot));
            if store.last.insert(client, (seq, slot)).is_some() {
                return None;
            }
        }
        r.finish().ok()?;
        Some(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(client: u64, seq: u64, key: &[u8], value: &[u8]) -> KvWrite {
        KvWrite {
            client,
            seq,
            op: KvOp::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        }
    }

    #[test]
    fn applies_in_order_and_reads_back() {
        let mut s = KvStore::new();
        assert!(s.is_empty());
        assert!(s.apply(0, &put(1, 1, b"a", b"x")));
        assert!(s.apply(1, &put(1, 2, b"a", b"y")));
        assert!(s.apply(2, &put(2, 1, b"b", b"z")));
        assert_eq!(s.get(b"a"), Some(b"y".as_slice()));
        assert_eq!(s.get(b"b"), Some(b"z".as_slice()));
        assert_eq!(s.len(), 2);
        assert_eq!(s.applied(), 3);
        assert_eq!(s.last_applied(1), Some((2, 1)));
        let del = KvWrite {
            client: 2,
            seq: 2,
            op: KvOp::Del { key: b"b".to_vec() },
        };
        assert!(s.apply(3, &del));
        assert_eq!(s.get(b"b"), None);
    }

    #[test]
    fn retry_duplicates_apply_once() {
        let mut s = KvStore::new();
        assert!(s.apply(0, &put(7, 1, b"k", b"v1")));
        // The same (client, seq) decided again in a later slot: skipped.
        assert!(!s.apply(5, &put(7, 1, b"k", b"v1")));
        // An older seq arriving late: skipped too.
        assert!(s.apply(6, &put(7, 3, b"k", b"v3")));
        assert!(!s.apply(7, &put(7, 2, b"k", b"v2")));
        assert_eq!(s.get(b"k"), Some(b"v3".as_slice()));
        assert_eq!(s.dup_skips(), 2);
        assert_eq!(s.applied(), 2);
    }

    /// The incremental accumulator must be a pure function of the final
    /// state: two stores that reach the same (map, cursors) through
    /// different intermediate values report the same digest.
    #[test]
    fn digest_is_path_independent_for_equal_states() {
        let (mut a, mut b) = (KvStore::new(), KvStore::new());
        a.apply(0, &put(1, 1, b"k", b"temporary"));
        a.apply(1, &put(1, 2, b"k", b"final"));
        b.apply(0, &put(1, 1, b"k", b"other"));
        b.apply(1, &put(1, 2, b"k", b"final"));
        assert_eq!(a.digest(), b.digest());
        // A delete cancels an insert exactly.
        let mut c = a.clone();
        c.apply(2, &put(1, 3, b"extra", b"x"));
        assert_ne!(c.digest(), a.digest());
        let del = KvWrite {
            client: 1,
            seq: 4,
            op: KvOp::Del {
                key: b"extra".to_vec(),
            },
        };
        c.apply(3, &del);
        // Maps match again; only the client cursor differs now.
        assert_eq!(c.map(), a.map());
        assert_ne!(c.digest(), a.digest(), "cursor advance is part of state");
    }

    #[test]
    fn export_install_roundtrips_digest_and_gauges() {
        let mut s = KvStore::new();
        s.apply(0, &put(1, 1, b"a", b"x"));
        s.apply(1, &put(2, 1, b"b", b"y"));
        s.apply(2, &put(1, 2, b"a", b"z"));
        s.apply(3, &put(1, 2, b"a", b"z")); // a dup skip (local stat only)
        let restored = KvStore::install(&s.export()).expect("well-formed blob");
        assert_eq!(restored.map(), s.map());
        assert_eq!(restored.digest(), s.digest());
        assert_eq!(restored.applied(), s.applied());
        assert_eq!(restored.last_applied(1), s.last_applied(1));
        assert_eq!(restored.dup_skips(), 0, "dup skips are a local stat");
        // The empty store round-trips too.
        let empty = KvStore::install(&KvStore::new().export()).unwrap();
        assert_eq!(empty.digest(), KvStore::new().digest());
        // Truncated and trailing-junk blobs are rejected.
        let blob = s.export();
        assert!(KvStore::install(&blob[..blob.len() - 1]).is_none());
        let mut long = blob.clone();
        long.push(0);
        assert!(KvStore::install(&long).is_none());
        assert!(KvStore::install(&[]).is_none());
    }

    #[test]
    fn digest_separates_states_and_matches_equal_ones() {
        let (mut a, mut b) = (KvStore::new(), KvStore::new());
        a.apply(0, &put(1, 1, b"a", b"x"));
        b.apply(0, &put(1, 1, b"a", b"x"));
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
        b.apply(1, &put(1, 2, b"a", b"x"));
        assert_ne!(a.digest(), b.digest());
        // Field boundaries matter: ("ab", "") != ("a", "b").
        let (mut c, mut d) = (KvStore::new(), KvStore::new());
        c.apply(0, &put(1, 1, b"ab", b""));
        d.apply(0, &put(1, 1, b"a", b"b"));
        assert_ne!(c.digest(), d.digest());
    }

    use proptest::prelude::*;

    /// Builds a deterministic pseudo-random write stream (clients, repeated
    /// seqs for retry duplicates, puts and deletes over a small key space)
    /// from a flat seed vector — the vendored proptest has no composite
    /// strategies.
    fn writes_from(seeds: &[u64]) -> Vec<KvWrite> {
        seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let client = s % 3;
                // Occasionally reuse a stale seq so the duplicate filter is
                // exercised inside batches too.
                let seq = 1 + (i as u64 / 2) % 8;
                let key = vec![b'k', (s % 5) as u8];
                if s % 7 == 0 {
                    KvWrite {
                        client,
                        seq,
                        op: KvOp::Del { key },
                    }
                } else {
                    KvWrite {
                        client,
                        seq,
                        op: KvOp::Put {
                            key,
                            value: s.to_le_bytes().to_vec(),
                        },
                    }
                }
            })
            .collect()
    }

    proptest! {
        /// Applying a decided batch via `apply_batch` is digest- and
        /// state-identical to applying its writes singly in the same order
        /// — batched replication must be observationally equal to the
        /// one-write-per-slot path, duplicates included.
        #[test]
        fn batch_apply_is_digest_identical_to_single_apply(
            seeds in proptest::collection::vec(0u64..1_000, 1..48),
            batch_len in 1usize..9,
        ) {
            let writes = writes_from(&seeds);
            let (mut batched, mut singly) = (KvStore::new(), KvStore::new());
            for (slot, chunk) in writes.chunks(batch_len).enumerate() {
                let fresh = batched.apply_batch(slot as u64, chunk, |_, _| {});
                let mut expect_fresh = 0;
                for w in chunk {
                    if singly.apply(slot as u64, w) {
                        expect_fresh += 1;
                    }
                }
                prop_assert_eq!(fresh, expect_fresh);
            }
            prop_assert_eq!(batched.digest(), singly.digest());
            prop_assert_eq!(batched.map(), singly.map());
            prop_assert_eq!(batched.applied(), singly.applied());
            prop_assert_eq!(batched.dup_skips(), singly.dup_skips());
        }

        /// `install ∘ export` is the identity on (map, cursors, digest,
        /// applied) for any reachable store state.
        #[test]
        fn random_states_survive_export_install(
            seeds in proptest::collection::vec(0u64..1_000, 0..48),
        ) {
            let mut s = KvStore::new();
            for (slot, w) in writes_from(&seeds).iter().enumerate() {
                s.apply(slot as u64, w);
            }
            let restored = KvStore::install(&s.export()).expect("own export");
            prop_assert_eq!(restored.map(), s.map());
            prop_assert_eq!(restored.digest(), s.digest());
            prop_assert_eq!(restored.applied(), s.applied());
        }

        /// Random bytes never panic the installer — snapshots cross the
        /// wire and are untrusted input.
        #[test]
        fn random_blobs_never_panic_install(
            bytes in proptest::collection::vec(0u8..255, 0..96),
        ) {
            let _ = KvStore::install(&bytes);
        }
    }
}
