//! The client path: leader discovery, redirect handling, seeded
//! retry/backoff.
//!
//! A [`SvcClient`] owns one transport endpoint (id ≥ `n`, outside the
//! replica group) and speaks the request/reply protocol of [`SvcMsg`]. It
//! starts by assuming `p1` leads (the all-zero initial Ω state elects the
//! smallest id, so this is the right first guess), follows
//! [`SvcReply::Redirect`]s, and on silence retries with seeded exponential
//! backoff while rotating its leader hint — which is exactly what rides out
//! a crashed or dark leader mid-load.

use crate::command::{KvOp, KvWrite, MAX_KEY_LEN, MAX_VALUE_LEN};
use crate::msg::{ReadTier, SvcMsg, SvcReply};
use irs_net::{wire::decode_payload, Transport, Wire};
use irs_sim::SimRng;
use irs_types::ProcessId;
use std::time::{Duration as StdDuration, Instant};

/// First per-attempt wait before a request is retried.
const BASE_RETRY: StdDuration = StdDuration::from_millis(30);
/// Cap on the exponential backoff.
const MAX_RETRY: StdDuration = StdDuration::from_millis(400);
/// Consecutive redirects an attempt follows before treating the cluster as
/// unstable and falling back to the rotate-and-back-off path. During a
/// re-election two replicas can transiently point at each other; without a
/// cap the client would ping-pong requests between them at link speed for
/// the whole deadline.
const MAX_REDIRECT_STREAK: u32 = 4;

/// Why a client call failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientError {
    /// No ack arrived within the caller's deadline (the command may still
    /// land in the log — sequence numbers make a later retry idempotent).
    TimedOut,
    /// The transport can no longer send or receive at all.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::TimedOut => write!(f, "request timed out"),
            ClientError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters a client accumulates across calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests acknowledged.
    pub acked: u64,
    /// Redirects followed.
    pub redirects: u64,
    /// Timed-out attempts that were retried.
    pub retries: u64,
    /// Calls that exhausted their deadline.
    pub failures: u64,
}

/// A connected client of the replicated KV service.
#[derive(Debug)]
pub struct SvcClient<T> {
    id: ProcessId,
    n: usize,
    transport: T,
    hint: ProcessId,
    seq: u64,
    rng: SimRng,
    /// Accumulated call statistics.
    pub stats: ClientStats,
    scratch: Vec<u8>,
}

impl<T: Transport> SvcClient<T> {
    /// Wraps a transport endpoint as a client. `id` is the endpoint's own
    /// id (≥ `n`); `n` is the replica count; `seed` drives retry jitter and
    /// hint rotation.
    pub fn new(id: ProcessId, n: usize, transport: T, seed: u64) -> Self {
        assert!(id.index() >= n, "client ids live beyond the replica group");
        SvcClient {
            id,
            n,
            transport,
            hint: ProcessId::new(0),
            seq: 0,
            rng: SimRng::from_seed(seed),
            stats: ClientStats::default(),
            scratch: Vec::new(),
        }
    }

    /// This client's endpoint id (doubles as its logical client id).
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The logical client id used in command headers.
    pub fn client_id(&self) -> u64 {
        u64::from(self.id.as_u32())
    }

    /// The replica currently believed to lead.
    pub fn leader_hint(&self) -> ProcessId {
        self.hint
    }

    /// Next sequence number (what the next write will carry).
    pub fn next_seq(&self) -> u64 {
        self.seq + 1
    }

    /// Rotates the leader hint to a seeded pseudo-random replica other
    /// than the current one (used after silence and after a useless
    /// redirect — resending to the same confused replica wastes a trip).
    fn rotate_hint(&mut self) {
        let next = self.rng.index(self.n);
        self.hint = if ProcessId::new(next as u32) == self.hint {
            ProcessId::new(((next + 1) % self.n) as u32)
        } else {
            ProcessId::new(next as u32)
        };
    }

    /// Binds `key` to `value`, blocking until the write is acknowledged as
    /// applied or `deadline` elapses. Returns the log slot of the write.
    ///
    /// # Errors
    ///
    /// [`ClientError::TimedOut`] when no ack arrived in time,
    /// [`ClientError::Closed`] when the transport is gone.
    ///
    /// # Panics
    ///
    /// Panics if the key or value exceeds the service bounds
    /// ([`MAX_KEY_LEN`], [`MAX_VALUE_LEN`]).
    pub fn put(
        &mut self,
        key: &[u8],
        value: &[u8],
        deadline: StdDuration,
    ) -> Result<u64, ClientError> {
        assert!(key.len() <= MAX_KEY_LEN, "key too long");
        assert!(value.len() <= MAX_VALUE_LEN, "value too long");
        self.execute(
            KvOp::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            deadline,
        )
    }

    /// Removes `key`, blocking like [`SvcClient::put`].
    ///
    /// # Errors
    ///
    /// See [`SvcClient::put`].
    ///
    /// # Panics
    ///
    /// Panics if the key exceeds [`MAX_KEY_LEN`].
    pub fn delete(&mut self, key: &[u8], deadline: StdDuration) -> Result<u64, ClientError> {
        assert!(key.len() <= MAX_KEY_LEN, "key too long");
        self.execute(KvOp::Del { key: key.to_vec() }, deadline)
    }

    /// Reads `key` at the chosen consistency tier, blocking until a value
    /// reply arrives or `deadline` elapses. Returns the binding (`None`
    /// when the key is unbound) plus the answering replica's apply
    /// frontier — the staleness witness.
    ///
    /// Linearizable tiers ([`ReadTier::Lease`], [`ReadTier::ReadIndex`])
    /// follow redirects to the leader like writes do; [`ReadTier::Stale`]
    /// is answered by whichever replica the request lands on.
    ///
    /// # Errors
    ///
    /// [`ClientError::TimedOut`] when no reply arrived in time,
    /// [`ClientError::Closed`] when the transport is gone.
    ///
    /// # Panics
    ///
    /// Panics if the key exceeds [`MAX_KEY_LEN`].
    pub fn get(
        &mut self,
        key: &[u8],
        tier: ReadTier,
        deadline: StdDuration,
    ) -> Result<(Option<Vec<u8>>, u64), ClientError> {
        assert!(key.len() <= MAX_KEY_LEN, "key too long");
        let rid = self.alloc_seq();
        let msg = SvcMsg::Read {
            client: self.client_id(),
            rid,
            key: key.to_vec(),
            tier,
        };
        let overall = Instant::now() + deadline;
        let mut attempt_wait = BASE_RETRY;
        let mut redirect_streak = 0u32;
        loop {
            if Instant::now() >= overall {
                self.stats.failures += 1;
                return Err(ClientError::TimedOut);
            }
            self.send_msg(&msg)?;
            let attempt_deadline = (Instant::now() + attempt_wait).min(overall);
            match self.await_reply(rid, attempt_deadline)? {
                Some(ReplyOutcome::Value { value, frontier }) => {
                    self.stats.acked += 1;
                    return Ok((value, frontier));
                }
                Some(ReplyOutcome::Applied { .. }) => {} // foreign; keep going
                Some(ReplyOutcome::Redirected) if redirect_streak < MAX_REDIRECT_STREAK => {
                    redirect_streak += 1;
                    continue;
                }
                Some(ReplyOutcome::Redirected) | None => {}
            }
            redirect_streak = 0;
            if Instant::now() >= overall {
                self.stats.failures += 1;
                return Err(ClientError::TimedOut);
            }
            self.stats.retries += 1;
            self.rotate_hint();
            let jitter_unit = self.rng.range_u64(0..1000);
            let jitter = attempt_wait.mul_f64(0.5 * jitter_unit as f64 / 1000.0);
            let sleep = (attempt_wait / 2 + jitter).min(
                overall
                    .saturating_duration_since(Instant::now())
                    .max(StdDuration::from_millis(1)),
            );
            std::thread::sleep(sleep);
            attempt_wait = (attempt_wait * 2).min(MAX_RETRY);
        }
    }

    /// Runs one operation through the redirect/retry protocol.
    fn execute(&mut self, op: KvOp, deadline: StdDuration) -> Result<u64, ClientError> {
        self.seq += 1;
        let write = KvWrite {
            client: self.client_id(),
            seq: self.seq,
            op,
        };
        let overall = Instant::now() + deadline;
        let cmd = write.encode();
        let mut attempt_wait = BASE_RETRY;
        let mut redirect_streak = 0u32;
        loop {
            if Instant::now() >= overall {
                self.stats.failures += 1;
                return Err(ClientError::TimedOut);
            }
            self.send_request(&cmd)?;
            let attempt_deadline = (Instant::now() + attempt_wait).min(overall);
            match self.await_reply(write.seq, attempt_deadline)? {
                Some(ReplyOutcome::Applied { slot }) => {
                    self.stats.acked += 1;
                    return Ok(slot);
                }
                // A Value for a write's seq cannot happen (writes and reads
                // draw from one seq space); treat it as silence.
                Some(ReplyOutcome::Value { .. }) => {}
                Some(ReplyOutcome::Redirected) if redirect_streak < MAX_REDIRECT_STREAK => {
                    // Follow the redirect immediately; a fresh hint is not a
                    // retry. A long streak of redirects, though, means the
                    // replicas disagree about the leader — fall through to
                    // the backoff path instead of ping-ponging at link speed.
                    redirect_streak += 1;
                    continue;
                }
                Some(ReplyOutcome::Redirected) | None => {}
            }
            redirect_streak = 0;
            if Instant::now() >= overall {
                self.stats.failures += 1;
                return Err(ClientError::TimedOut);
            }
            // Silence: the hinted replica is slow, dark or dead. Rotate the
            // hint pseudo-randomly (seeded) and back off with jitter.
            self.stats.retries += 1;
            self.rotate_hint();
            let jitter_unit = self.rng.range_u64(0..1000);
            let jitter = attempt_wait.mul_f64(0.5 * jitter_unit as f64 / 1000.0);
            let sleep = (attempt_wait / 2 + jitter).min(
                overall
                    .saturating_duration_since(Instant::now())
                    .max(StdDuration::from_millis(1)),
            );
            std::thread::sleep(sleep);
            attempt_wait = (attempt_wait * 2).min(MAX_RETRY);
        }
    }

    /// Sends one request frame to the current hint.
    pub(crate) fn send_request(&mut self, cmd: &irs_consensus::Command) -> Result<(), ClientError> {
        self.send_msg(&SvcMsg::Request { cmd: cmd.clone() })
    }

    /// Sends one already-built service message to the current hint.
    pub(crate) fn send_msg(&mut self, msg: &SvcMsg) -> Result<(), ClientError> {
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        msg.encode(&mut scratch);
        let result = self.transport.send(self.id, self.hint, &scratch);
        self.scratch = scratch;
        match result {
            Ok(()) => Ok(()),
            // Routing/IO failures to one replica are that replica's
            // problem; the retry loop rotates away from it.
            Err(irs_net::NetError::Closed) => Err(ClientError::Closed),
            Err(_) => Ok(()),
        }
    }

    /// Waits for a reply to `seq` until `deadline`. `Ok(None)` on silence.
    fn await_reply(
        &mut self,
        seq: u64,
        deadline: Instant,
    ) -> Result<Option<ReplyOutcome>, ClientError> {
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            let frame = match self.transport.recv(remaining) {
                Ok(Some(frame)) => frame,
                Ok(None) => return Ok(None),
                Err(_) => return Err(ClientError::Closed),
            };
            match self.digest_frame(&frame) {
                Some((got, outcome)) if got == seq => return Ok(Some(outcome)),
                _ => continue, // stale or foreign; keep waiting
            }
        }
    }

    /// Allocates the next sequence number (the open-loop path builds its
    /// own [`KvWrite`]s so it can resend them on redirects).
    pub(crate) fn alloc_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Sends one write without waiting for the reply (the open-loop path).
    pub(crate) fn send_write(&mut self, w: &KvWrite) -> Result<(), ClientError> {
        self.send_request(&w.encode())
    }

    /// Receives at most one reply event within `timeout` (the open-loop
    /// path). Redirect events update the hint; the caller decides whether
    /// to resend.
    pub(crate) fn poll_event(
        &mut self,
        timeout: StdDuration,
    ) -> Result<Option<(u64, ReplyOutcome)>, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let frame = match self.transport.recv(remaining) {
                Ok(Some(frame)) => frame,
                Ok(None) => return Ok(None),
                Err(_) => return Err(ClientError::Closed),
            };
            if let Some(event) = self.digest_frame(&frame) {
                return Ok(Some(event));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
        }
    }

    /// Interprets one received frame: the matched sequence number plus what
    /// the reply meant. Redirects update the leader hint as a side effect.
    fn digest_frame(&mut self, frame: &irs_net::Frame) -> Option<(u64, ReplyOutcome)> {
        if frame.to != self.id {
            return None;
        }
        let msg = decode_payload::<SvcMsg>(&frame.payload).ok()?;
        match msg {
            SvcMsg::Reply(SvcReply::Applied { client, seq, slot })
                if client == self.client_id() =>
            {
                Some((seq, ReplyOutcome::Applied { slot }))
            }
            SvcMsg::Reply(SvcReply::Redirect {
                client,
                seq,
                leader,
            }) if client == self.client_id() => {
                self.stats.redirects += 1;
                if leader == self.hint || leader.index() >= self.n {
                    // A replica redirecting to itself (or nowhere useful)
                    // is still unstable; rotate instead of looping.
                    self.rotate_hint();
                } else {
                    self.hint = leader;
                }
                Some((seq, ReplyOutcome::Redirected))
            }
            SvcMsg::Reply(SvcReply::Value {
                client,
                rid,
                value,
                frontier,
            }) if client == self.client_id() => {
                Some((rid, ReplyOutcome::Value { value, frontier }))
            }
            _ => None,
        }
    }
}

/// What a reply meant for the outstanding request.
#[derive(Clone, Debug)]
pub(crate) enum ReplyOutcome {
    /// Acked: decided and applied at the answering replica.
    Applied {
        /// The log slot.
        slot: u64,
    },
    /// The hint changed; resend to the new hint.
    Redirected,
    /// A read answered with the key's binding and the apply frontier.
    Value {
        /// The binding (`None` = unbound).
        value: Option<Vec<u8>>,
        /// The answering replica's apply frontier.
        frontier: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_net::MemNetwork;
    use std::time::Instant;

    /// The per-operation deadline is a hard total budget: against a cluster
    /// that never answers (here: three replica endpoints nobody serves —
    /// the fully-partitioned limit), `put` returns `TimedOut` shortly after
    /// the budget instead of hanging a loadgen thread forever, and every
    /// retry/rotation stays inside it.
    #[test]
    fn ops_time_out_against_an_unresponsive_cluster() {
        let n = 3;
        let mut mesh = MemNetwork::mesh(n + 1);
        let ep = mesh.remove(n); // replica endpoints in `mesh` are never read
        let mut client = SvcClient::new(ProcessId::new(n as u32), n, ep, 0xDEAD);
        let budget = StdDuration::from_millis(250);
        let started = Instant::now();
        let result = client.put(b"k", b"v", budget);
        let elapsed = started.elapsed();
        assert_eq!(result, Err(ClientError::TimedOut));
        assert!(elapsed >= budget, "must not give up early: {elapsed:?}");
        assert!(
            elapsed < budget + StdDuration::from_millis(500),
            "must not overshoot the budget by a backoff cycle: {elapsed:?}"
        );
        assert_eq!(client.stats.failures, 1);
        assert!(
            client.stats.retries > 0,
            "silence was retried within budget"
        );
        // The sequence number stays consumed, so a later retry of the same
        // logical write would be a fresh seq (exactly-once is per seq).
        assert_eq!(client.next_seq(), 2);
    }
}
