//! Baseline 2: the time-free *message pattern* Ω of Mostéfaoui, Mourgaya and
//! Raynal (DSN 2003).
//!
//! No timers and no timeouts. Each process periodically broadcasts a
//! `QUERY(sn)` and waits for the first `n − t` `RESPONSE(sn)` messages — the
//! *winning* responses. It then broadcasts the identities of the *losing*
//! responders (`LOSERS(sn, set)`). A process raises its counter for `k` only
//! when at least `n − t` processes reported `k` losing for the same query
//! index — the same quorum-aggregation idea the paper's algorithm borrows
//! from [16]. Counters are gossiped entry-wise (max) on responses, and the
//! leader is the process with the smallest `(counter, id)` pair.
//!
//! Correctness needs the *message pattern* assumption: a correct process `p`
//! and a fixed set `Q` of `t` processes such that `p`'s response to every
//! query of every `q ∈ Q` is eventually always winning. Then `p` is winning
//! at the `t + 1` processes `Q ∪ {p}`, so at most `n − t − 1` processes can
//! report it losing and its counter stops growing, while a crashed or
//! persistently slow process keeps being reported by everyone.
//!
//! Under a timely-only (eventual t-source) or intermittent schedule the
//! winning pattern does not hold and the counter of every process keeps
//! growing, so the algorithm does not stabilise — the separation experiment
//! E6 shows exactly that.
//!
//! (The only timer used is the local query period of the querying task,
//! which the original algorithm also needs in order to issue queries
//! forever; it plays no role in failure detection.)

use irs_types::{
    Actions, Duration, Introspect, LeaderOracle, ProcessId, ProcessSet, Protocol, RoundNum,
    RoundTagged, Snapshot, SystemConfig, TimerId,
};
use std::collections::BTreeMap;

/// Timer used for the periodic query broadcast.
const TIMER_QUERY: TimerId = TimerId::new(0);
/// How many query indices of loser-vote bookkeeping to retain.
const VOTE_RETENTION: u64 = 256;

/// Message of the message-pattern baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryMsg {
    /// `QUERY(sn)` — broadcast by the querying task.
    Query {
        /// Query sequence number of the querier.
        sn: u64,
    },
    /// `RESPONSE(sn, counters)` — sent back by every process that receives a
    /// query; carries the responder's counter vector for gossip.
    Response {
        /// The sequence number of the query being answered.
        sn: u64,
        /// The responder's counter vector (max-merged by the querier).
        counters: Vec<u64>,
    },
    /// `LOSERS(sn, set)` — broadcast by the querier once its query closed,
    /// naming the processes whose responses were losing.
    Losers {
        /// The query index the report is about.
        sn: u64,
        /// The losing responders.
        losers: ProcessSet,
    },
}

impl RoundTagged for QueryMsg {
    fn constrained_round(&self) -> Option<RoundNum> {
        match self {
            // Responses to the sn-th query of a process are the messages the
            // winning/losing distinction applies to.
            QueryMsg::Response { sn, .. } => Some(RoundNum::new(*sn)),
            QueryMsg::Query { .. } | QueryMsg::Losers { .. } => None,
        }
    }

    fn estimated_size(&self) -> usize {
        match self {
            QueryMsg::Query { .. } => 1 + 8,
            QueryMsg::Response { counters, .. } => 1 + 8 + 8 * counters.len(),
            QueryMsg::Losers { losers, .. } => 1 + 8 + losers.capacity().div_ceil(8),
        }
    }
}

/// Configuration of [`OmegaMessagePattern`].
#[derive(Clone, Copy, Debug)]
pub struct MessagePatternConfig {
    /// The system `(n, t)`; the quorum `n − t` defines winning responses and
    /// the number of losing reports needed to charge a process.
    pub system: SystemConfig,
    /// Query period.
    pub period: Duration,
}

impl MessagePatternConfig {
    /// Default tuning: query period 10 ticks.
    pub fn new(system: SystemConfig) -> Self {
        MessagePatternConfig {
            system,
            period: Duration::from_ticks(10),
        }
    }
}

/// See the [module documentation](self).
#[derive(Clone, Debug)]
pub struct OmegaMessagePattern {
    id: ProcessId,
    cfg: MessagePatternConfig,
    /// Current query sequence number.
    sn: u64,
    /// Responders of the current query (self included — a process trivially
    /// "responds" to its own query first).
    responders: ProcessSet,
    /// Whether the current query has already been closed.
    closed: bool,
    /// Loser reports per query index: `votes[sn][k]` = how many processes
    /// reported `k` losing for their `sn`-th query.
    votes: BTreeMap<u64, Vec<u32>>,
    /// Quorum-confirmed losing counters (gossiped, max-merged).
    counters: Vec<u64>,
    queries_issued: u64,
    responses_sent: u64,
    loser_reports_sent: u64,
}

impl OmegaMessagePattern {
    /// Creates the process with default tuning.
    pub fn new(id: ProcessId, system: SystemConfig) -> Self {
        Self::with_config(id, MessagePatternConfig::new(system))
    }

    /// Creates the process with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of the system.
    pub fn with_config(id: ProcessId, cfg: MessagePatternConfig) -> Self {
        assert!(cfg.system.contains(id), "process id {id} out of range");
        let n = cfg.system.n();
        OmegaMessagePattern {
            id,
            cfg,
            sn: 0,
            responders: ProcessSet::singleton(n, id),
            closed: false,
            votes: BTreeMap::new(),
            counters: vec![0; n],
            queries_issued: 0,
            responses_sent: 0,
            loser_reports_sent: 0,
        }
    }

    /// The quorum-confirmed losing counters.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    fn issue_query(&mut self, out: &mut Actions<QueryMsg>) {
        self.sn += 1;
        self.queries_issued += 1;
        self.responders = ProcessSet::singleton(self.cfg.system.n(), self.id);
        self.closed = false;
        out.broadcast_others(QueryMsg::Query { sn: self.sn });
        out.set_timer(TIMER_QUERY, self.cfg.period);
    }

    /// Closes the current query: every process that did not answer among the
    /// first `n − t` is reported losing to everybody (ourselves included, so
    /// our own vote is counted through the same path).
    fn close_query(&mut self, out: &mut Actions<QueryMsg>) {
        let all = self.cfg.system.all_set();
        let losers = all.difference(&self.responders);
        self.closed = true;
        self.loser_reports_sent += 1;
        out.broadcast_all(QueryMsg::Losers {
            sn: self.sn,
            losers,
        });
    }

    fn record_loser_report(&mut self, sn: u64, losers: &ProcessSet) {
        let n = self.cfg.system.n();
        let quorum = self.cfg.system.quorum() as u32;
        let votes = self.votes.entry(sn).or_insert_with(|| vec![0; n]);
        for k in losers.iter() {
            votes[k.index()] += 1;
            if votes[k.index()] == quorum {
                self.counters[k.index()] += 1;
            }
        }
        // Bound the bookkeeping (query indices older than the retention
        // window can no longer reach a quorum that matters).
        if self.votes.len() as u64 > VOTE_RETENTION {
            let cutoff = self.sn.saturating_sub(VOTE_RETENTION);
            self.votes.retain(|&s, _| s >= cutoff);
        }
    }
}

impl Protocol for OmegaMessagePattern {
    type Msg = QueryMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, out: &mut Actions<QueryMsg>) {
        self.issue_query(out);
    }

    fn on_message(&mut self, from: ProcessId, msg: &QueryMsg, out: &mut Actions<QueryMsg>) {
        match msg {
            QueryMsg::Query { sn } => {
                self.responses_sent += 1;
                out.send(
                    from,
                    QueryMsg::Response {
                        sn: *sn,
                        counters: self.counters.clone(),
                    },
                );
            }
            QueryMsg::Response { sn, counters } => {
                for (mine, theirs) in self.counters.iter_mut().zip(counters) {
                    *mine = (*mine).max(*theirs);
                }
                if *sn != self.sn || self.closed {
                    return; // response to an old query, or query already closed
                }
                self.responders.insert(from);
                if self.responders.len() >= self.cfg.system.quorum() {
                    // The first n − t responses are in: everyone else loses.
                    self.close_query(out);
                }
            }
            QueryMsg::Losers { sn, losers } => {
                self.record_loser_report(*sn, losers);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Actions<QueryMsg>) {
        if timer == TIMER_QUERY {
            // The algorithm is time-free: a new query is only issued once the
            // previous one has collected its n − t responses (the timer just
            // paces the querying task). Issuing a new query early would turn
            // slow-but-winning responses into losing ones and destroy the
            // message-pattern guarantee.
            out.set_timer(TIMER_QUERY, self.cfg.period);
            if self.sn == 0 || self.closed {
                self.issue_query(out);
            }
        }
    }
}

impl LeaderOracle for OmegaMessagePattern {
    fn leader(&self) -> ProcessId {
        let mut best = ProcessId::new(0);
        let mut best_key = (u64::MAX, u32::MAX);
        for p in self.cfg.system.processes() {
            let key = (self.counters[p.index()], p.as_u32());
            if key < best_key {
                best_key = key;
                best = p;
            }
        }
        best
    }
}

impl Introspect for OmegaMessagePattern {
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            leader: self.leader(),
            sending_round: self.sn,
            receiving_round: self.sn,
            timer_value: self.cfg.period.ticks(),
            susp_levels: self.counters.clone(),
            extra: vec![
                (irs_obs::names::QUERIES_ISSUED, self.queries_issued),
                (irs_obs::names::RESPONSES_SENT, self.responses_sent),
                (irs_obs::names::LOSER_REPORTS_SENT, self.loser_reports_sent),
                (
                    irs_obs::names::VOTE_ROUNDS_RETAINED,
                    self.votes.len() as u64,
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap() // quorum 3
    }

    fn respond(p: &mut OmegaMessagePattern, from: u32, sn: u64) -> Actions<QueryMsg> {
        let mut out = Actions::new();
        p.on_message(
            ProcessId::new(from),
            &QueryMsg::Response {
                sn,
                counters: vec![0; 4],
            },
            &mut out,
        );
        out
    }

    #[test]
    fn start_issues_first_query() {
        let mut p = OmegaMessagePattern::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        assert_eq!(out.sends().len(), 1);
        assert!(matches!(out.sends()[0].msg, QueryMsg::Query { sn: 1 }));
    }

    #[test]
    fn queries_are_answered_with_responses() {
        let mut p = OmegaMessagePattern::new(ProcessId::new(2), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        let mut out = Actions::new();
        p.on_message(ProcessId::new(0), &QueryMsg::Query { sn: 4 }, &mut out);
        assert_eq!(out.sends().len(), 1);
        match &out.sends()[0].msg {
            QueryMsg::Response { sn, .. } => assert_eq!(*sn, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn closing_a_query_broadcasts_the_losers() {
        // n = 4, quorum 3: self + 2 responders close the query; the silent
        // process p4 is reported losing.
        let mut p = OmegaMessagePattern::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        assert!(respond(&mut p, 1, 1).sends().is_empty());
        let out = respond(&mut p, 2, 1);
        assert_eq!(out.sends().len(), 1);
        match &out.sends()[0].msg {
            QueryMsg::Losers { sn, losers } => {
                assert_eq!(*sn, 1);
                assert_eq!(losers.to_vec(), vec![ProcessId::new(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A late response to the closed query triggers nothing further.
        assert!(respond(&mut p, 3, 1).sends().is_empty());
    }

    #[test]
    fn no_new_query_until_the_previous_one_closes() {
        let mut p = OmegaMessagePattern::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        // Only one response arrives before the query timer fires: the open
        // query stays open (time-free waiting) and no new query is issued.
        respond(&mut p, 1, 1);
        let mut out = Actions::new();
        p.on_timer(TIMER_QUERY, &mut out);
        assert!(!out
            .sends()
            .iter()
            .any(|o| matches!(o.msg, QueryMsg::Query { .. })));
        assert_eq!(p.sn, 1);
        // Once the quorum arrives the query closes, and the next timer tick
        // issues query 2.
        respond(&mut p, 2, 1);
        let mut out = Actions::new();
        p.on_timer(TIMER_QUERY, &mut out);
        assert!(out
            .sends()
            .iter()
            .any(|o| matches!(o.msg, QueryMsg::Query { sn: 2 })));
    }

    #[test]
    fn counters_rise_only_on_a_quorum_of_loser_reports() {
        let mut p = OmegaMessagePattern::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        let loser = ProcessSet::from_ids(4, [ProcessId::new(3)]);
        // Two reports (below the quorum of 3): no charge.
        for reporter in [0u32, 1] {
            p.on_message(
                ProcessId::new(reporter),
                &QueryMsg::Losers {
                    sn: 1,
                    losers: loser.clone(),
                },
                &mut Actions::new(),
            );
        }
        assert_eq!(p.counters(), &[0, 0, 0, 0]);
        // Third distinct report reaches the quorum: one charge, exactly once.
        p.on_message(
            ProcessId::new(2),
            &QueryMsg::Losers {
                sn: 1,
                losers: loser.clone(),
            },
            &mut Actions::new(),
        );
        assert_eq!(p.counters(), &[0, 0, 0, 1]);
        // A fourth report for the same sn does not double-charge.
        p.on_message(
            ProcessId::new(3),
            &QueryMsg::Losers {
                sn: 1,
                losers: loser,
            },
            &mut Actions::new(),
        );
        assert_eq!(p.counters(), &[0, 0, 0, 1]);
    }

    #[test]
    fn counters_gossip_and_leader_is_min() {
        let mut p = OmegaMessagePattern::new(ProcessId::new(3), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        p.on_message(
            ProcessId::new(1),
            &QueryMsg::Response {
                sn: 1,
                counters: vec![5, 2, 9, 4],
            },
            &mut Actions::new(),
        );
        assert_eq!(p.counters(), &[5, 2, 9, 4]);
        assert_eq!(p.leader(), ProcessId::new(1));
    }

    #[test]
    fn responses_are_constrained_other_messages_are_not() {
        assert_eq!(QueryMsg::Query { sn: 3 }.constrained_round(), None);
        assert_eq!(
            QueryMsg::Response {
                sn: 3,
                counters: vec![]
            }
            .constrained_round(),
            Some(RoundNum::new(3))
        );
        assert_eq!(
            QueryMsg::Losers {
                sn: 3,
                losers: ProcessSet::empty(4)
            }
            .constrained_round(),
            None
        );
    }

    #[test]
    fn vote_bookkeeping_is_bounded() {
        let mut p = OmegaMessagePattern::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        p.sn = 10_000;
        let loser = ProcessSet::from_ids(4, [ProcessId::new(3)]);
        for sn in 1..=2_000u64 {
            p.on_message(
                ProcessId::new(1),
                &QueryMsg::Losers {
                    sn,
                    losers: loser.clone(),
                },
                &mut Actions::new(),
            );
        }
        assert!(p.snapshot().gauge("vote_rounds_retained").unwrap() <= VOTE_RETENTION + 1);
    }
}
