//! Baseline 1: timeout-based Ω requiring *all* links of the leader to be
//! eventually timely.
//!
//! This is the oldest style of Ω implementation (Larrea–Fernández–Arévalo
//! SRDS 2000, and the Ω extracted from Chandra–Toueg's `◊S` constructions):
//! every process periodically broadcasts a heartbeat; every process monitors
//! every other process with an adaptive per-sender timeout and counts how
//! often each process was suspected; counters are gossiped with an
//! entry-wise max and the leader is the process with the lexicographically
//! smallest `(counter, id)` pair.
//!
//! Its correctness needs a much stronger assumption than the paper's: there
//! must be a correct process whose output links to *all* processes are
//! eventually timely (in fact the classical proofs assume all links of the
//! system are eventually timely). Under a message-pattern-only or
//! intermittent-star schedule with unboundedly growing delays it keeps
//! suspecting everybody and never stabilises — which is exactly what
//! experiment E6 demonstrates.

use irs_types::{
    Actions, Duration, Introspect, LeaderOracle, ProcessId, Protocol, RoundNum, RoundTagged,
    Snapshot, SystemConfig, TimerId,
};

/// Timer used for the periodic heartbeat broadcast.
const TIMER_HEARTBEAT: TimerId = TimerId::new(0);
/// Per-sender suspicion timers start at this id (timer for sender `j` is
/// `TIMER_WATCH_BASE + j`).
const TIMER_WATCH_BASE: u16 = 8;

/// Message of the timeout-all baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Heartbeat sequence number of the sender.
    pub seq: u64,
    /// The sender's view of every process's suspicion counter (max-merged by
    /// receivers).
    pub counters: Vec<u64>,
}

impl RoundTagged for Heartbeat {
    fn constrained_round(&self) -> Option<RoundNum> {
        // Heartbeats play the role of the ALIVE messages, so assumption
        // schedules constrain them the same way — the comparison of E6 is
        // fair: every algorithm's periodic messages get whatever guarantee
        // the assumption offers.
        Some(RoundNum::new(self.seq))
    }

    fn estimated_size(&self) -> usize {
        1 + 8 + 8 * self.counters.len()
    }
}

/// Configuration of [`OmegaTimeoutAll`].
#[derive(Clone, Copy, Debug)]
pub struct TimeoutAllConfig {
    /// The system `(n, t)` (only `n` is used; the algorithm is not
    /// quorum-based).
    pub system: SystemConfig,
    /// Heartbeat period.
    pub period: Duration,
    /// Initial per-sender timeout.
    pub initial_timeout: Duration,
    /// Additive timeout increase applied after each false suspicion.
    pub timeout_step: Duration,
}

impl TimeoutAllConfig {
    /// Default tuning: period 10, initial timeout 30, step 10.
    pub fn new(system: SystemConfig) -> Self {
        TimeoutAllConfig {
            system,
            period: Duration::from_ticks(10),
            initial_timeout: Duration::from_ticks(30),
            timeout_step: Duration::from_ticks(10),
        }
    }
}

/// See the [module documentation](self).
#[derive(Clone, Debug)]
pub struct OmegaTimeoutAll {
    id: ProcessId,
    cfg: TimeoutAllConfig,
    seq: u64,
    /// Gossiped suspicion counters (monotone, max-merged).
    counters: Vec<u64>,
    /// Current per-sender timeout.
    timeouts: Vec<Duration>,
    /// Whether the sender is currently suspected.
    suspected: Vec<bool>,
    false_suspicions: u64,
}

impl OmegaTimeoutAll {
    /// Creates the process with default tuning.
    pub fn new(id: ProcessId, system: SystemConfig) -> Self {
        Self::with_config(id, TimeoutAllConfig::new(system))
    }

    /// Creates the process with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of the system.
    pub fn with_config(id: ProcessId, cfg: TimeoutAllConfig) -> Self {
        assert!(cfg.system.contains(id), "process id {id} out of range");
        let n = cfg.system.n();
        OmegaTimeoutAll {
            id,
            cfg,
            seq: 0,
            counters: vec![0; n],
            timeouts: vec![cfg.initial_timeout; n],
            suspected: vec![false; n],
            false_suspicions: 0,
        }
    }

    /// The gossiped suspicion counters.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    fn watch_timer(&self, sender: ProcessId) -> TimerId {
        TimerId::new(TIMER_WATCH_BASE + sender.as_u32() as u16)
    }

    fn sender_of_timer(&self, timer: TimerId) -> Option<ProcessId> {
        let raw = timer.raw();
        if raw >= TIMER_WATCH_BASE && ((raw - TIMER_WATCH_BASE) as usize) < self.cfg.system.n() {
            Some(ProcessId::new((raw - TIMER_WATCH_BASE) as u32))
        } else {
            None
        }
    }

    fn broadcast(&mut self, out: &mut Actions<Heartbeat>) {
        self.seq += 1;
        out.broadcast_others(Heartbeat {
            seq: self.seq,
            counters: self.counters.clone(),
        });
        out.set_timer(TIMER_HEARTBEAT, self.cfg.period);
    }
}

impl Protocol for OmegaTimeoutAll {
    type Msg = Heartbeat;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, out: &mut Actions<Heartbeat>) {
        self.broadcast(out);
        for sender in self.cfg.system.processes().filter(|s| *s != self.id) {
            out.set_timer(self.watch_timer(sender), self.timeouts[sender.index()]);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &Heartbeat, out: &mut Actions<Heartbeat>) {
        for (mine, theirs) in self.counters.iter_mut().zip(&msg.counters) {
            *mine = (*mine).max(*theirs);
        }
        if self.suspected[from.index()] {
            // Premature suspicion: be more patient with this sender.
            self.suspected[from.index()] = false;
            self.false_suspicions += 1;
            self.timeouts[from.index()] = self.timeouts[from.index()] + self.cfg.timeout_step;
        }
        out.set_timer(self.watch_timer(from), self.timeouts[from.index()]);
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Actions<Heartbeat>) {
        if timer == TIMER_HEARTBEAT {
            self.broadcast(out);
            return;
        }
        if let Some(sender) = self.sender_of_timer(timer) {
            // No heartbeat from `sender` within its timeout: suspect it and
            // charge it one suspicion.
            self.suspected[sender.index()] = true;
            self.counters[sender.index()] += 1;
            out.set_timer(self.watch_timer(sender), self.timeouts[sender.index()]);
        }
    }
}

impl LeaderOracle for OmegaTimeoutAll {
    fn leader(&self) -> ProcessId {
        let mut best = ProcessId::new(0);
        let mut best_key = (u64::MAX, u32::MAX);
        for p in self.cfg.system.processes() {
            let key = (self.counters[p.index()], p.as_u32());
            if key < best_key {
                best_key = key;
                best = p;
            }
        }
        best
    }
}

impl Introspect for OmegaTimeoutAll {
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            leader: self.leader(),
            sending_round: self.seq,
            receiving_round: self.seq,
            timer_value: self.timeouts.iter().map(|d| d.ticks()).max().unwrap_or(0),
            susp_levels: self.counters.clone(),
            extra: vec![
                (irs_obs::names::FALSE_SUSPICIONS, self.false_suspicions),
                (
                    irs_obs::names::SUSPECTED_NOW,
                    self.suspected.iter().filter(|s| **s).count() as u64,
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap()
    }

    #[test]
    fn start_broadcasts_and_watches_everyone() {
        let mut p = OmegaTimeoutAll::new(ProcessId::new(1), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        assert_eq!(out.sends().len(), 1);
        // One heartbeat timer + three watch timers.
        assert_eq!(out.timers().len(), 4);
    }

    #[test]
    fn timeout_without_heartbeat_increments_counter() {
        let mut p = OmegaTimeoutAll::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        let watch_p2 = TimerId::new(TIMER_WATCH_BASE + 1);
        let mut out = Actions::new();
        p.on_timer(watch_p2, &mut out);
        assert_eq!(p.counters()[1], 1);
        assert_eq!(p.leader(), ProcessId::new(0));
    }

    #[test]
    fn heartbeat_after_suspicion_raises_timeout() {
        let mut p = OmegaTimeoutAll::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        let before = p.timeouts[1];
        let mut out = Actions::new();
        p.on_timer(TimerId::new(TIMER_WATCH_BASE + 1), &mut out);
        let mut out = Actions::new();
        p.on_message(
            ProcessId::new(1),
            &Heartbeat {
                seq: 1,
                counters: vec![0; 4],
            },
            &mut out,
        );
        assert!(p.timeouts[1] > before);
        assert_eq!(p.snapshot().gauge("false_suspicions"), Some(1));
    }

    #[test]
    fn counters_are_max_merged_and_drive_leader() {
        let mut p = OmegaTimeoutAll::new(ProcessId::new(2), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        p.on_message(
            ProcessId::new(1),
            &Heartbeat {
                seq: 1,
                counters: vec![7, 0, 3, 2],
            },
            &mut Actions::new(),
        );
        assert_eq!(p.counters(), &[7, 0, 3, 2]);
        assert_eq!(p.leader(), ProcessId::new(1));
    }

    #[test]
    fn heartbeats_are_round_tagged_by_sequence() {
        let hb = Heartbeat {
            seq: 9,
            counters: vec![0; 4],
        };
        assert_eq!(hb.constrained_round(), Some(RoundNum::new(9)));
        assert!(hb.estimated_size() > 32);
    }
}
