//! Baseline 3: accusation-counter Ω for the *eventual t-source* assumption,
//! inspired by Aguilera, Delporte-Gallet, Fauconnier and Toueg (PODC 2004).
//!
//! Every process periodically broadcasts `ALIVE(seq, counter)` where
//! `counter` is its own accusation counter. Receivers monitor each sender
//! with an adaptive timeout; when the timeout for a sender expires they send
//! an `ACCUSE(seq)` back to that sender (and only to it). A process
//! increments its own counter when it has been accused by at least `n − t`
//! distinct processes for the same sequence number — which can never keep
//! happening to an eventual t-source, because at least `t` of its output
//! links are eventually timely and hence at most `n − t − 1` processes can
//! legitimately accuse it.
//!
//! The leader is the process with the smallest `(counter, id)` pair among the
//! processes that are not *long-silent* (no `ALIVE` received for an
//! adaptively growing silence limit); long-silence is how crashed processes —
//! whose counters freeze because they can no longer accuse themselves — get
//! excluded.
//!
//! Compared to the published algorithm this implementation keeps the
//! simplest adaptive rules (additive timeout increase, doubling silence
//! limit) and does not implement the communication-efficiency optimisation;
//! DESIGN.md lists the simplifications. Its assumption is the eventual
//! t-source with a *fixed* point set — strictly stronger than the paper's
//! rotating/intermittent star, which experiment E6 exploits.

use irs_types::{
    Actions, Duration, Introspect, LeaderOracle, ProcessId, Protocol, RoundNum, RoundTagged,
    Snapshot, SystemConfig, TimerId,
};
use std::collections::BTreeSet;

/// Timer used for the periodic `ALIVE` broadcast.
const TIMER_ALIVE: TimerId = TimerId::new(0);
/// Per-sender accusation timers start at this id.
const TIMER_WATCH_BASE: u16 = 8;

/// Message of the t-source baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TSourceMsg {
    /// Periodic liveness announcement carrying the sender's own accusation
    /// counter (receivers keep the maximum they have seen per sender).
    Alive {
        /// Sequence number of the announcement.
        seq: u64,
        /// The sender's own accusation counter.
        counter: u64,
    },
    /// Accusation sent to a process whose `ALIVE` did not arrive in time.
    Accuse {
        /// The accuser's estimate of the sequence number it missed.
        seq: u64,
    },
}

impl RoundTagged for TSourceMsg {
    fn constrained_round(&self) -> Option<RoundNum> {
        match self {
            TSourceMsg::Alive { seq, .. } => Some(RoundNum::new(*seq)),
            TSourceMsg::Accuse { .. } => None,
        }
    }

    fn estimated_size(&self) -> usize {
        match self {
            TSourceMsg::Alive { .. } => 1 + 8 + 8,
            TSourceMsg::Accuse { .. } => 1 + 8,
        }
    }
}

/// Configuration of [`OmegaTSource`].
#[derive(Clone, Copy, Debug)]
pub struct TSourceConfig {
    /// The system `(n, t)`.
    pub system: SystemConfig,
    /// `ALIVE` period.
    pub period: Duration,
    /// Initial per-sender accusation timeout.
    pub initial_timeout: Duration,
    /// Additive timeout increase applied when an accusation proves premature.
    pub timeout_step: Duration,
    /// Initial long-silence limit, expressed in own `ALIVE` periods.
    pub initial_silence_periods: u64,
}

impl TSourceConfig {
    /// Default tuning: period 10, timeout 30, step 10, silence 20 periods.
    pub fn new(system: SystemConfig) -> Self {
        TSourceConfig {
            system,
            period: Duration::from_ticks(10),
            initial_timeout: Duration::from_ticks(30),
            timeout_step: Duration::from_ticks(10),
            initial_silence_periods: 20,
        }
    }
}

/// See the [module documentation](self).
#[derive(Clone, Debug)]
pub struct OmegaTSource {
    id: ProcessId,
    cfg: TSourceConfig,
    seq: u64,
    /// My own accusation counter (incremented on a quorum of accusations for
    /// the same sequence number).
    my_counter: u64,
    /// Distinct accusers per recent sequence number.
    accusers: Vec<(u64, BTreeSet<ProcessId>)>,
    /// Highest counter received from each process.
    counters: Vec<u64>,
    /// Adaptive accusation timeout per sender.
    timeouts: Vec<Duration>,
    /// Whether an accusation for the sender is outstanding (no ALIVE since).
    accused: Vec<bool>,
    /// Own-period tick at which the last ALIVE from each sender arrived.
    last_heard_tick: Vec<u64>,
    /// Long-silence limit (in own periods) per sender.
    silence_limit: Vec<u64>,
    accusations_sent: u64,
    quorum_accusations: u64,
}

impl OmegaTSource {
    /// Creates the process with default tuning.
    pub fn new(id: ProcessId, system: SystemConfig) -> Self {
        Self::with_config(id, TSourceConfig::new(system))
    }

    /// Creates the process with explicit tuning.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of the system.
    pub fn with_config(id: ProcessId, cfg: TSourceConfig) -> Self {
        assert!(cfg.system.contains(id), "process id {id} out of range");
        let n = cfg.system.n();
        OmegaTSource {
            id,
            cfg,
            seq: 0,
            my_counter: 0,
            accusers: Vec::new(),
            counters: vec![0; n],
            timeouts: vec![cfg.initial_timeout; n],
            accused: vec![false; n],
            last_heard_tick: vec![0; n],
            silence_limit: vec![cfg.initial_silence_periods; n],
            accusations_sent: 0,
            quorum_accusations: 0,
        }
    }

    /// The accusation counters as currently known (own entry included).
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    fn watch_timer(&self, sender: ProcessId) -> TimerId {
        TimerId::new(TIMER_WATCH_BASE + sender.as_u32() as u16)
    }

    fn sender_of_timer(&self, timer: TimerId) -> Option<ProcessId> {
        let raw = timer.raw();
        if raw >= TIMER_WATCH_BASE && ((raw - TIMER_WATCH_BASE) as usize) < self.cfg.system.n() {
            Some(ProcessId::new((raw - TIMER_WATCH_BASE) as u32))
        } else {
            None
        }
    }

    fn broadcast_alive(&mut self, out: &mut Actions<TSourceMsg>) {
        self.seq += 1;
        self.counters[self.id.index()] = self.my_counter;
        out.broadcast_others(TSourceMsg::Alive {
            seq: self.seq,
            counter: self.my_counter,
        });
        out.set_timer(TIMER_ALIVE, self.cfg.period);
    }

    fn record_accusation(&mut self, from: ProcessId, seq: u64) {
        let quorum = self.cfg.system.quorum();
        let entry = match self.accusers.iter_mut().find(|(s, _)| *s == seq) {
            Some(entry) => entry,
            None => {
                self.accusers.push((seq, BTreeSet::new()));
                if self.accusers.len() > 64 {
                    self.accusers.remove(0);
                }
                self.accusers.last_mut().expect("just pushed")
            }
        };
        let newly_added = entry.1.insert(from);
        if newly_added && entry.1.len() == quorum {
            self.my_counter += 1;
            self.quorum_accusations += 1;
            self.counters[self.id.index()] = self.my_counter;
        }
    }

    fn is_long_silent(&self, p: ProcessId) -> bool {
        if p == self.id {
            return false;
        }
        self.seq.saturating_sub(self.last_heard_tick[p.index()]) > self.silence_limit[p.index()]
    }
}

impl Protocol for OmegaTSource {
    type Msg = TSourceMsg;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_start(&mut self, out: &mut Actions<TSourceMsg>) {
        self.broadcast_alive(out);
        for sender in self.cfg.system.processes().filter(|s| *s != self.id) {
            out.set_timer(self.watch_timer(sender), self.timeouts[sender.index()]);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &TSourceMsg, out: &mut Actions<TSourceMsg>) {
        match *msg {
            TSourceMsg::Alive { counter, .. } => {
                self.counters[from.index()] = self.counters[from.index()].max(counter);
                if self.is_long_silent(from) {
                    // We wrongly considered this process dead: be more patient.
                    self.silence_limit[from.index()] =
                        self.silence_limit[from.index()].saturating_mul(2);
                }
                self.last_heard_tick[from.index()] = self.seq;
                if self.accused[from.index()] {
                    // The accusation was premature: enlarge the timeout.
                    self.accused[from.index()] = false;
                    self.timeouts[from.index()] =
                        self.timeouts[from.index()] + self.cfg.timeout_step;
                }
                out.set_timer(self.watch_timer(from), self.timeouts[from.index()]);
            }
            TSourceMsg::Accuse { seq } => {
                self.record_accusation(from, seq);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, out: &mut Actions<TSourceMsg>) {
        if timer == TIMER_ALIVE {
            self.broadcast_alive(out);
            return;
        }
        if let Some(sender) = self.sender_of_timer(timer) {
            // The sender's ALIVE did not arrive within the timeout: accuse it
            // (the accusation goes to the accused only, as in the original
            // algorithm) and keep watching.
            self.accused[sender.index()] = true;
            self.accusations_sent += 1;
            out.send(sender, TSourceMsg::Accuse { seq: self.seq });
            out.set_timer(self.watch_timer(sender), self.timeouts[sender.index()]);
        }
    }
}

impl LeaderOracle for OmegaTSource {
    fn leader(&self) -> ProcessId {
        let mut best: Option<(u64, u32)> = None;
        let mut best_id = ProcessId::new(0);
        for p in self.cfg.system.processes() {
            if self.is_long_silent(p) {
                continue;
            }
            let key = (self.counters[p.index()], p.as_u32());
            if best.is_none() || key < best.expect("checked") {
                best = Some(key);
                best_id = p;
            }
        }
        best_id
    }
}

impl Introspect for OmegaTSource {
    fn snapshot(&self) -> Snapshot {
        Snapshot {
            leader: self.leader(),
            sending_round: self.seq,
            receiving_round: self.seq,
            timer_value: self.timeouts.iter().map(|d| d.ticks()).max().unwrap_or(0),
            susp_levels: self.counters.clone(),
            extra: vec![
                (irs_obs::names::ACCUSATIONS_SENT, self.accusations_sent),
                (irs_obs::names::QUORUM_ACCUSATIONS, self.quorum_accusations),
                (irs_obs::names::MY_COUNTER, self.my_counter),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SystemConfig {
        SystemConfig::new(4, 1).unwrap() // quorum 3
    }

    #[test]
    fn start_broadcasts_alive_and_watches() {
        let mut p = OmegaTSource::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        assert_eq!(out.sends().len(), 1);
        assert!(matches!(
            out.sends()[0].msg,
            TSourceMsg::Alive { seq: 1, .. }
        ));
        assert_eq!(out.timers().len(), 4);
    }

    #[test]
    fn timeout_sends_accusation_to_the_accused_only() {
        let mut p = OmegaTSource::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        let mut out = Actions::new();
        p.on_timer(TimerId::new(TIMER_WATCH_BASE + 2), &mut out);
        assert_eq!(out.sends().len(), 1);
        assert!(
            matches!(out.sends()[0].dest, irs_types::Destination::To(q) if q == ProcessId::new(2))
        );
        assert!(matches!(out.sends()[0].msg, TSourceMsg::Accuse { .. }));
    }

    #[test]
    fn quorum_of_accusations_raises_own_counter_once_per_seq() {
        let mut p = OmegaTSource::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        for accuser in [1u32, 2, 3] {
            p.on_message(
                ProcessId::new(accuser),
                &TSourceMsg::Accuse { seq: 5 },
                &mut Actions::new(),
            );
        }
        assert_eq!(p.counters()[0], 1);
        // Duplicate accusations for the same seq do not double-charge.
        p.on_message(
            ProcessId::new(1),
            &TSourceMsg::Accuse { seq: 5 },
            &mut Actions::new(),
        );
        assert_eq!(p.counters()[0], 1);
        // Fewer than a quorum for another seq does not charge.
        for accuser in [1u32, 2] {
            p.on_message(
                ProcessId::new(accuser),
                &TSourceMsg::Accuse { seq: 6 },
                &mut Actions::new(),
            );
        }
        assert_eq!(p.counters()[0], 1);
    }

    #[test]
    fn premature_accusation_raises_timeout() {
        let mut p = OmegaTSource::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        let before = p.timeouts[1];
        p.on_timer(TimerId::new(TIMER_WATCH_BASE + 1), &mut Actions::new());
        p.on_message(
            ProcessId::new(1),
            &TSourceMsg::Alive { seq: 1, counter: 0 },
            &mut Actions::new(),
        );
        assert!(p.timeouts[1] > before);
    }

    #[test]
    fn long_silent_processes_are_not_elected() {
        let mut p = OmegaTSource::new(ProcessId::new(2), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        // Everyone has counter 0, so the leader would be p1 — but after many
        // of our own periods without hearing from p1 or p2 they are long
        // silent, leaving p3 (ourselves) as leader.
        for _ in 0..40 {
            p.on_timer(TIMER_ALIVE, &mut Actions::new());
            p.on_message(
                ProcessId::new(3),
                &TSourceMsg::Alive {
                    seq: p.seq,
                    counter: 0,
                },
                &mut Actions::new(),
            );
        }
        assert!(p.is_long_silent(ProcessId::new(0)));
        assert!(p.is_long_silent(ProcessId::new(1)));
        assert!(!p.is_long_silent(ProcessId::new(3)));
        assert_eq!(p.leader(), ProcessId::new(2));
    }

    #[test]
    fn counters_gossip_via_alive() {
        let mut p = OmegaTSource::new(ProcessId::new(0), system());
        let mut out = Actions::new();
        p.on_start(&mut out);
        p.on_message(
            ProcessId::new(2),
            &TSourceMsg::Alive { seq: 1, counter: 7 },
            &mut Actions::new(),
        );
        assert_eq!(p.counters()[2], 7);
    }

    #[test]
    fn alive_is_constrained_accuse_is_not() {
        assert_eq!(
            TSourceMsg::Alive { seq: 4, counter: 0 }.constrained_round(),
            Some(RoundNum::new(4))
        );
        assert_eq!(TSourceMsg::Accuse { seq: 4 }.constrained_round(), None);
    }
}
