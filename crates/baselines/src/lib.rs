//! Baseline Ω implementations the paper compares against.
//!
//! The paper's contribution is an assumption — the intermittent rotating
//! t-star — that strictly generalises the assumptions required by earlier Ω
//! algorithms. To make that comparison executable, this crate provides one
//! representative implementation per earlier assumption family:
//!
//! | baseline | assumption it needs | module |
//! |---|---|---|
//! | [`OmegaTimeoutAll`] | all output links of some correct process eventually timely | [`timeout_all`] |
//! | [`OmegaTSource`] | eventual t-source (fixed set of `t` eventually timely output links) | [`tsource`] |
//! | [`OmegaMessagePattern`] | message pattern (fixed set of `t` processes for which the source's responses are always winning) | [`query_response`] |
//!
//! All three are sans-IO [`irs_types::Protocol`] state machines, so they run
//! under the same simulator and the same adversary schedules as the paper's
//! algorithm; experiment E6 ("assumption matrix") runs every algorithm under
//! every assumption and reports which combinations stabilise.
//!
//! The implementations follow the published algorithms in structure but keep
//! the simplest adaptive rules; the simplifications are listed in each
//! module's documentation and in DESIGN.md. They are baselines, not
//! re-publications.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod query_response;
pub mod timeout_all;
pub mod tsource;

pub use query_response::{MessagePatternConfig, OmegaMessagePattern, QueryMsg};
pub use timeout_all::{Heartbeat, OmegaTimeoutAll, TimeoutAllConfig};
pub use tsource::{OmegaTSource, TSourceConfig, TSourceMsg};
