//! Each baseline elects a leader under the assumption it was designed for,
//! and (where the separation is clean) fails to do so under a weaker one.

use irs_baselines::{OmegaMessagePattern, OmegaTSource, OmegaTimeoutAll};
use irs_sim::adversary::basic::{EventuallySynchronous, RandomDelay};
use irs_sim::adversary::{presets, DelayDist};
use irs_sim::{CrashPlan, SimConfig, Simulation};
use irs_types::{Duration, GrowthFn, ProcessId, SystemConfig, Time};

fn system() -> SystemConfig {
    SystemConfig::new(4, 1).unwrap()
}

fn background() -> DelayDist {
    DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(60))
}

/// A background whose delays grow without bound: timeout-chasing algorithms
/// cannot stabilise against it, order-based guarantees are unaffected.
fn growing_background() -> DelayDist {
    DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(40)).with_growth(
        GrowthFn::Linear {
            per_round: 1,
            divisor: 20,
        },
        Duration::from_ticks(100),
    )
}

#[test]
fn timeout_all_elects_under_eventual_synchrony() {
    let procs = system()
        .processes()
        .map(|id| OmegaTimeoutAll::new(id, system()))
        .collect();
    let adversary = EventuallySynchronous::new(
        Time::from_ticks(5_000),
        Duration::from_ticks(5),
        background(),
    );
    let mut sim = Simulation::new(
        SimConfig::new(3, Time::from_ticks(200_000)),
        procs,
        adversary,
        CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(20_000)),
    );
    let report = sim.run_until_stable_for(Duration::from_ticks(20_000));
    assert!(report.is_stable());
    assert_ne!(report.stabilization.unwrap().leader, ProcessId::new(0));
}

#[test]
fn tsource_elects_under_eventual_t_source() {
    let center = ProcessId::new(2);
    let procs = system()
        .processes()
        .map(|id| OmegaTSource::new(id, system()))
        .collect();
    let adversary =
        presets::eventual_t_source(system(), center, Duration::from_ticks(8), background(), 5);
    let mut sim = Simulation::new(
        SimConfig::new(11, Time::from_ticks(300_000)),
        procs,
        adversary,
        CrashPlan::new(),
    );
    let report = sim.run_until_stable_for(Duration::from_ticks(20_000));
    assert!(
        report.is_stable(),
        "history length {}",
        report.leader_history.len()
    );
    let leader = report.stabilization.unwrap().leader;
    assert!(!report.crashed.contains(&leader));
}

#[test]
fn message_pattern_elects_under_message_pattern() {
    let center = ProcessId::new(1);
    let procs = system()
        .processes()
        .map(|id| OmegaMessagePattern::new(id, system()))
        .collect();
    let adversary = presets::message_pattern(system(), center, growing_background(), 9);
    let mut sim = Simulation::new(
        SimConfig::new(13, Time::from_ticks(300_000)),
        procs,
        adversary,
        CrashPlan::new(),
    );
    let report = sim.run_until_stable_for(Duration::from_ticks(20_000));
    assert!(report.is_stable());
    // The star centre is the only process whose responses are guaranteed
    // winning, so under growing delays it is the one that stays uncharged.
    assert_eq!(report.stabilization.unwrap().leader, center);
}

#[test]
fn timeout_all_does_not_stabilise_under_growing_delays() {
    // Purely asynchronous, unboundedly growing delays: the timeout-based
    // baseline keeps suspecting everyone. (This is a negative control; it is
    // checked over a bounded horizon.)
    let procs = system()
        .processes()
        .map(|id| OmegaTimeoutAll::new(id, system()))
        .collect();
    let adversary = RandomDelay::new(growing_background());
    let mut sim = Simulation::new(
        SimConfig::new(17, Time::from_ticks(150_000)),
        procs,
        adversary,
        CrashPlan::new(),
    );
    let report = sim.run();
    // Either no agreement at the end, or the agreement is recent (the system
    // kept churning): what never happens is an early, lasting stabilisation.
    if let Some(stab) = report.stabilization {
        assert!(
            stab.at > Time::from_ticks(75_000),
            "unexpected lasting stabilisation at {}",
            stab.at
        );
    }
    // Suspicion counters keep growing for every process.
    let min_counter = report
        .final_snapshots
        .iter()
        .flatten()
        .flat_map(|s| s.susp_levels.iter().copied())
        .min()
        .unwrap();
    assert!(min_counter > 0, "every process should keep being suspected");
}

#[test]
fn baselines_are_deterministic() {
    let go = || {
        let procs = system()
            .processes()
            .map(|id| OmegaTSource::new(id, system()))
            .collect();
        let adversary = presets::eventual_t_source(
            system(),
            ProcessId::new(3),
            Duration::from_ticks(8),
            background(),
            21,
        );
        let mut sim = Simulation::new(
            SimConfig::new(23, Time::from_ticks(80_000)),
            procs,
            adversary,
            CrashPlan::new(),
        );
        let r = sim.run();
        (r.counters, r.leader_history.len())
    };
    assert_eq!(go(), go());
}
