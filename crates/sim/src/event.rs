//! The discrete-event queue.

use irs_types::{ProcessId, RoundNum, Time, TimerId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Key identifying the gate of the "winning message" enforcement: the held
/// messages destined to a process for a given constrained round.
pub(crate) type HoldKey = (ProcessId, RoundNum);

/// Something that will happen at a point of simulated time.
#[derive(Clone, Debug)]
pub enum Event<M> {
    /// A message reaches its destination process.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Payload.
        msg: M,
    },
    /// A timer armed by a protocol instance fires.
    TimerFire {
        /// Owner of the timer.
        pid: ProcessId,
        /// Which timer.
        timer: TimerId,
        /// Generation at arming time; stale generations are ignored, which
        /// implements the "re-arming replaces the pending timer" semantics.
        generation: u64,
    },
    /// A process crashes (stops taking steps forever).
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
    /// Fallback release of a message held by the winning-message gate.
    ReleaseHeld {
        /// Gate key (receiver, constrained round).
        key: HoldKey,
        /// Token of the held message to release.
        token: u64,
    },
}

/// An event scheduled at a time, ordered by `(time, insertion sequence)` so
/// that simultaneous events are processed in insertion order (deterministic).
#[derive(Debug)]
struct Scheduled<M> {
    at: Time,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of [`Event`]s.
///
/// # Example
///
/// ```
/// use irs_sim::{Event, EventQueue};
/// use irs_types::{ProcessId, Time};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.push(Time::from_ticks(20), Event::Crash { pid: ProcessId::new(0) });
/// q.push(Time::from_ticks(10), Event::Crash { pid: ProcessId::new(1) });
/// let (t, _) = q.pop().unwrap();
/// assert_eq!(t, Time::from_ticks(10));
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Time, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Event<M>)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(pid: u32) -> Event<u8> {
        Event::Crash {
            pid: ProcessId::new(pid),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(Time::from_ticks(30), crash(3));
        q.push(Time::from_ticks(10), crash(1));
        q.push(Time::from_ticks(20), crash(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.ticks()).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(Time::from_ticks(5), crash(0));
        q.push(Time::from_ticks(5), crash(1));
        q.push(Time::from_ticks(5), crash(2));
        let pids: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Crash { pid } => pid.as_u32(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2]);
    }

    #[test]
    fn peek_len_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ticks(7), crash(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ticks(7)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut q: EventQueue<u8> = EventQueue::new();
        // Insert pseudo-random times and confirm the pop order is sorted.
        let mut t = 12345u64;
        for _ in 0..5000 {
            t = t.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.push(Time::from_ticks(t % 100_000), crash(0));
        }
        let mut last = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at.ticks() >= last);
            last = at.ticks();
        }
    }
}
