//! The discrete-event queue.

use irs_types::{ProcessId, RoundNum, Time, TimerId};
use std::collections::{BTreeMap, VecDeque};

/// Something that will happen at a point of simulated time.
///
/// Generic over the *payload handle* `H`: the deterministic engine
/// instantiates it with `Rc<Msg>` (single-threaded, so the broadcast
/// fan-out's reference counting needs no atomics), while the real-time
/// runtime uses `Arc<Msg>` for its cross-shard deliveries.
#[derive(Clone, Debug)]
pub enum Event<H> {
    /// A message reaches its destination process.
    ///
    /// The payload handle is reference-counted: a broadcast to `n − 1`
    /// receivers schedules `n − 1` `Deliver` events sharing one allocation,
    /// so the fan-out clones a pointer, not the message.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Shared payload handle.
        msg: H,
    },
    /// A timer armed by a protocol instance fires.
    TimerFire {
        /// Owner of the timer.
        pid: ProcessId,
        /// Which timer.
        timer: TimerId,
        /// Generation at arming time; stale generations are ignored, which
        /// implements the "re-arming replaces the pending timer" semantics.
        generation: u64,
    },
    /// A process crashes (stops taking steps forever).
    Crash {
        /// The crashing process.
        pid: ProcessId,
    },
    /// Fallback release of a single message held by the winning-message gate
    /// (used for messages displaced from a recycled gate slot).
    ReleaseHeld {
        /// Index of the held message in the engine's hold buffer.
        slot: u32,
        /// Token stamped when the message was held; a mismatch means the slot
        /// was already released (by its gate opening) and reused.
        token: u64,
    },
    /// Fallback deadline sweep of one winning-message gate slot: releases
    /// every message still held on `(to, rn)` whose deadline has passed, and
    /// re-arms itself for the earliest remaining deadline. One sweep event
    /// per `(receiver, round)` replaces one [`Event::ReleaseHeld`] per held
    /// message — at large `n` a single round can hold thousands of messages,
    /// and in the overwhelmingly common case (the star-centre message opens
    /// the gate in the same instant) every one of those deadline events
    /// would pop as a stale no-op.
    ReleaseGate {
        /// The receiver whose gate ring is swept.
        to: ProcessId,
        /// The round whose gate slot armed the sweep.
        rn: RoundNum,
    },
}

/// Slots per wheel level (one 10-bit digit of the tick value per level).
/// 1024-tick level-0 windows cover the typical message-delay spread, so most
/// events are filed exactly once.
const SLOT_BITS: u32 = 10;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Seven levels of 1024 slots cover the full `u64` tick range (7 × 10 bits
/// plus the sign-free top bits that no simulation horizon reaches).
const LEVELS: usize = 7;

/// One wheel level: `SLOTS` FIFO deques plus an occupancy bitmap so the
/// next occupied slot is found with a handful of word operations.
#[derive(Debug)]
struct WheelLevel<M> {
    slots: Vec<VecDeque<(u64, Event<M>)>>,
    occupied: [u64; SLOTS / 64],
}

impl<M> WheelLevel<M> {
    fn new() -> Self {
        WheelLevel {
            slots: (0..SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; SLOTS / 64],
        }
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    fn unmark(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// The first occupied slot with index ≥ `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= SLOTS / 64 {
                return None;
            }
            bits = self.occupied[word];
        }
    }
}

/// A time-ordered queue of [`Event`]s.
///
/// Events that share a timestamp are popped in insertion order
/// (deterministic FIFO), exactly the `(time, sequence)` order a binary heap
/// with an insertion counter would produce — the property test in this module
/// checks the two against each other.
///
/// # Representation
///
/// The engine pushes and pops one event per simulated step, and a binary
/// heap pays `O(log len)` element moves on both ends. The queue is instead a
/// classic *hierarchical timing wheel*: `LEVELS` levels of `SLOTS` FIFO
/// slots, one `SLOT_BITS`-bit digit of the tick value per level. A push
/// indexes the level of the highest digit in which the timestamp differs
/// from the current cursor — O(1), no element moves. A pop drains the
/// level-0 slot of the earliest occupied tick; when a level-0 window is
/// exhausted, the next occupied coarse slot is promoted one level down,
/// which re-bins each event once per level at most. Same-tick bursts (the
/// lockstep broadcasts of the protocols) land in one slot and keep their
/// FIFO order through every promotion.
///
/// Events pushed at or before an already-popped timestamp (the engine never
/// does this, but the API allows it) go to a small ordered side table that is
/// always drained first.
///
/// # Example
///
/// ```
/// use irs_sim::{Event, EventQueue};
/// use irs_types::{ProcessId, Time};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.push(Time::from_ticks(20), Event::Crash { pid: ProcessId::new(0) });
/// q.push(Time::from_ticks(10), Event::Crash { pid: ProcessId::new(1) });
/// let (t, _) = q.pop().unwrap();
/// assert_eq!(t, Time::from_ticks(10));
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    /// Lower bound on every timestamp stored in the wheel; only ever moves
    /// forward. Equal to the timestamp of the most recent wheel pop.
    cursor: u64,
    levels: Vec<WheelLevel<M>>,
    /// Events pushed strictly before `cursor`: globally earliest, popped
    /// first, ordered by `(time, insertion)`.
    overdue: BTreeMap<Time, VecDeque<Event<M>>>,
    len: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            cursor: 0,
            levels: (0..LEVELS).map(|_| WheelLevel::new()).collect(),
            overdue: BTreeMap::new(),
            len: 0,
        }
    }

    /// The wheel level an event at tick `at ≥ cursor` belongs to: the level
    /// of the highest `SLOT_BITS`-bit digit in which `at` differs from the
    /// cursor.
    fn level_of(&self, at: u64) -> usize {
        let diff = at ^ self.cursor;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros() as usize) / SLOT_BITS as usize
        }
    }

    fn wheel_insert(&mut self, at: u64, event: Event<M>) {
        let level = self.level_of(at);
        let slot = ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].slots[slot].push_back((at, event));
        self.levels[level].mark(slot);
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: Time, event: Event<M>) {
        self.len += 1;
        let t = at.ticks();
        if t < self.cursor {
            self.overdue.entry(at).or_default().push_back(event);
        } else {
            self.wheel_insert(t, event);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Event<M>)> {
        // Overdue events are strictly earlier than everything in the wheel
        // (the emptiness check keeps the common path free of map traversal).
        if !self.overdue.is_empty() {
            return self.pop_overdue();
        }
        self.pop_wheel()
    }

    #[cold]
    fn pop_overdue(&mut self) -> Option<(Time, Event<M>)> {
        if let Some(mut entry) = self.overdue.first_entry() {
            let at = *entry.key();
            let event = entry
                .get_mut()
                .pop_front()
                .expect("overdue bucket never left empty");
            if entry.get().is_empty() {
                entry.remove();
            }
            self.len -= 1;
            return Some((at, event));
        }
        self.pop_wheel()
    }

    fn pop_wheel(&mut self) -> Option<(Time, Event<M>)> {
        loop {
            // Fast path: the earliest occupied level-0 slot of the current
            // `SLOTS`-tick window holds the next event.
            let from = (self.cursor & SLOT_MASK) as usize;
            if let Some(slot) = self.levels[0].next_occupied(from) {
                let deque = &mut self.levels[0].slots[slot];
                let (t, event) = deque.pop_front().expect("occupied slot is non-empty");
                if deque.is_empty() {
                    self.levels[0].unmark(slot);
                }
                self.cursor = t;
                self.len -= 1;
                return Some((Time::from_ticks(t), event));
            }
            // The window is exhausted: promote the next occupied coarse slot.
            let mut promoted = false;
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let from = ((self.cursor >> shift) & SLOT_MASK) as usize + 1;
                if from >= SLOTS {
                    continue; // this level's window is exhausted too
                }
                let Some(slot) = self.levels[level].next_occupied(from) else {
                    continue;
                };
                // Advance the cursor to the base of the promoted window; every
                // remaining event is at or after it. The top level's digit
                // reaches past bit 63, so the mask of the bits above it is
                // computed with a checked shift (empty mask at the top).
                let high_mask = (!0u64).checked_shl(shift + SLOT_BITS).unwrap_or(0);
                self.cursor = (self.cursor & high_mask) | ((slot as u64) << shift);
                let mut drained = std::mem::take(&mut self.levels[level].slots[slot]);
                self.levels[level].unmark(slot);
                for (t, event) in drained.drain(..) {
                    self.wheel_insert(t, event);
                }
                // Re-binning targets strictly lower levels, so the slot is
                // still empty: hand its buffer back to avoid reallocating.
                self.levels[level].slots[slot] = drained;
                promoted = true;
                break;
            }
            if !promoted {
                debug_assert_eq!(self.len, 0, "events lost by the wheel");
                return None;
            }
        }
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some((&at, _)) = self.overdue.first_key_value() {
            return Some(at);
        }
        // Scan outward from the cursor; the first occupied slot of the
        // finest occupied level bounds the answer, but coarse slots are not
        // time-ordered internally, so take the minimum over their contents.
        let from = (self.cursor & SLOT_MASK) as usize;
        if let Some(slot) = self.levels[0].next_occupied(from) {
            return self.levels[0].slots[slot]
                .front()
                .map(|&(t, _)| Time::from_ticks(t));
        }
        for level in 1..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let from = ((self.cursor >> shift) & SLOT_MASK) as usize + 1;
            if from >= SLOTS {
                continue;
            }
            let Some(slot) = self.levels[level].next_occupied(from) else {
                continue;
            };
            return self.levels[level].slots[slot]
                .iter()
                .map(|&(t, _)| t)
                .min()
                .map(Time::from_ticks);
        }
        None
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(pid: u32) -> Event<u8> {
        Event::Crash {
            pid: ProcessId::new(pid),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(Time::from_ticks(30), crash(3));
        q.push(Time::from_ticks(10), crash(1));
        q.push(Time::from_ticks(20), crash(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.ticks())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(Time::from_ticks(5), crash(0));
        q.push(Time::from_ticks(5), crash(1));
        q.push(Time::from_ticks(5), crash(2));
        let pids: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Crash { pid } => pid.as_u32(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pids, vec![0, 1, 2]);
    }

    #[test]
    fn peek_len_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ticks(7), crash(0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(Time::from_ticks(7)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    /// Reference model: a binary heap over `(time, insertion sequence)` —
    /// the representation the queue replaced. The calendar queue must be
    /// observationally identical under any push/pop interleaving, including
    /// insertion-order ties at equal times.
    mod model_equivalence {
        use super::*;
        use proptest::prelude::*;
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(Default)]
        struct HeapModel {
            heap: BinaryHeap<Reverse<(u64, u64)>>,
            payloads: std::collections::HashMap<(u64, u64), u32>,
            next_seq: u64,
        }

        impl HeapModel {
            fn push(&mut self, at: u64, id: u32) {
                let key = (at, self.next_seq);
                self.next_seq += 1;
                self.heap.push(Reverse(key));
                self.payloads.insert(key, id);
            }

            fn pop(&mut self) -> Option<(u64, u32)> {
                let Reverse(key) = self.heap.pop()?;
                Some((key.0, self.payloads.remove(&key).expect("payload")))
            }
        }

        fn id_of(event: Event<u8>) -> u32 {
            match event {
                Event::Crash { pid } => pid.as_u32(),
                _ => unreachable!("model only schedules crashes"),
            }
        }

        /// Spreads the small drawn time over the wheel's levels so the
        /// interleavings exercise promotion, multi-level peeks, and the
        /// top-level (bit ≥ 60) digit, while keeping same-time ties frequent
        /// within each scale.
        const SCALES: [u64; 5] = [1, 1_000, 1_000_000, 1_000_000_000_000, 1 << 60];

        proptest! {
            /// Interleaving: each op is either a push (time drawn from a
            /// deliberately small domain so ties are frequent, then scaled
            /// across wheel levels) or a pop.
            #[test]
            fn prop_matches_binary_heap_model(
                ops in proptest::collection::vec((0u8..4, 0u64..16, 0u32..5), 1..400),
            ) {
                let mut queue: EventQueue<u8> = EventQueue::new();
                let mut model = HeapModel::default();
                let mut id = 0u32;
                for (op, small, scale) in ops {
                    let at = small * SCALES[scale as usize];
                    if op == 0 {
                        // 1-in-4 ops is a pop.
                        let got = queue.pop();
                        let want = model.pop();
                        prop_assert_eq!(got.as_ref().map(|(t, _)| t.ticks()), want.map(|(t, _)| t));
                        prop_assert_eq!(got.map(|(_, e)| id_of(e)), want.map(|(_, i)| i));
                    } else {
                        queue.push(Time::from_ticks(at), crash(id));
                        model.push(at, id);
                        id += 1;
                    }
                    prop_assert_eq!(queue.len(), model.heap.len());
                    prop_assert_eq!(queue.peek_time().map(|t| t.ticks()), model.heap.peek().map(|Reverse((t, _))| *t));
                }
                // Drain both completely: the full pop sequence must match,
                // including FIFO order among equal times.
                loop {
                    let got = queue.pop();
                    let want = model.pop();
                    prop_assert_eq!(got.as_ref().map(|(t, _)| t.ticks()), want.map(|(t, _)| t));
                    prop_assert_eq!(got.map(|(_, e)| id_of(e)), want.map(|(_, i)| i));
                    if want.is_none() {
                        break;
                    }
                }
            }
        }
    }

    /// The top wheel level's digit reaches past bit 63; promotion there must
    /// not overflow the high-bits mask computation.
    #[test]
    fn top_level_ticks_round_trip() {
        let mut q: EventQueue<u8> = EventQueue::new();
        let times = [1u64 << 60, (1 << 60) + 5, 3, 1 << 62, u64::MAX];
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ticks(t), crash(i as u32));
        }
        let mut sorted = times;
        sorted.sort();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.ticks())
            .collect();
        assert_eq!(popped, sorted.to_vec());
        assert!(q.is_empty());
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut q: EventQueue<u8> = EventQueue::new();
        // Insert pseudo-random times and confirm the pop order is sorted.
        let mut t = 12345u64;
        for _ in 0..5000 {
            t = t.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.push(Time::from_ticks(t % 100_000), crash(0));
        }
        let mut last = 0;
        while let Some((at, _)) = q.pop() {
            assert!(at.ticks() >= last);
            last = at.ticks();
        }
    }
}
