//! Run tracing: counters and leader-agreement history.

use irs_types::{ProcessId, Time};

/// Aggregate counters of one simulation run.
///
/// "Constrained" messages are those the behavioural assumption talks about
/// (the `ALIVE(rn)` messages); "other" covers everything else (`SUSPICION`,
/// consensus messages, …). The distinction feeds the communication-cost
/// experiment (E9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to a live process.
    pub messages_delivered: u64,
    /// Messages dropped because the destination had crashed.
    pub dropped_to_crashed: u64,
    /// Assumption-constrained (`ALIVE`) messages sent.
    pub constrained_sent: u64,
    /// Unconstrained (everything else) messages sent.
    pub other_sent: u64,
    /// Estimated bytes handed to the network.
    pub bytes_sent: u64,
    /// Timer arm requests.
    pub timers_set: u64,
    /// Timer expirations delivered to protocols.
    pub timer_fires: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Messages held by the winning-message gate at some point.
    pub messages_held: u64,
    /// Held messages released because their deadline passed before the
    /// star-centre message arrived (the guarantee was not enforced for them).
    pub gate_deadline_releases: u64,
}

/// One transition of the system-wide leader agreement.
///
/// `agreed` is `Some(p)` when every *live* process's `leader()` returned `p`
/// at that instant, and `None` when live processes disagreed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderChange {
    /// When the transition happened.
    pub at: Time,
    /// The new agreement state.
    pub agreed: Option<ProcessId>,
}

/// The trace of one run: counters plus the leader-agreement history.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Aggregate counters.
    pub counters: TraceCounters,
    /// Every change of the system-wide agreement state, in time order.
    pub leader_history: Vec<LeaderChange>,
}

impl Trace {
    /// Records an agreement transition (deduplicating consecutive identical
    /// states).
    pub fn record_agreement(&mut self, at: Time, agreed: Option<ProcessId>) {
        if self.leader_history.last().map(|c| c.agreed) == Some(agreed) {
            return;
        }
        self.leader_history.push(LeaderChange { at, agreed });
    }

    /// The current agreement state (as of the last recorded transition).
    pub fn current_agreement(&self) -> Option<ProcessId> {
        self.leader_history.last().and_then(|c| c.agreed)
    }

    /// The time of the last agreement transition, if any.
    pub fn last_change_at(&self) -> Option<Time> {
        self.leader_history.last().map(|c| c.at)
    }

    /// Number of times the agreed leader changed (transitions into a `Some`
    /// state that differs from the previous `Some` state).
    pub fn distinct_leaders(&self) -> usize {
        let mut leaders: Vec<ProcessId> = Vec::new();
        for c in &self.leader_history {
            if let Some(l) = c.agreed {
                if leaders.last() != Some(&l) {
                    leaders.push(l);
                }
            }
        }
        leaders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_deduplicates_consecutive_states() {
        let mut t = Trace::default();
        t.record_agreement(Time::from_ticks(1), None);
        t.record_agreement(Time::from_ticks(2), None);
        t.record_agreement(Time::from_ticks(3), Some(ProcessId::new(1)));
        t.record_agreement(Time::from_ticks(4), Some(ProcessId::new(1)));
        t.record_agreement(Time::from_ticks(5), Some(ProcessId::new(2)));
        assert_eq!(t.leader_history.len(), 3);
        assert_eq!(t.current_agreement(), Some(ProcessId::new(2)));
        assert_eq!(t.last_change_at(), Some(Time::from_ticks(5)));
    }

    #[test]
    fn distinct_leaders_counts_actual_leader_switches() {
        let mut t = Trace::default();
        t.record_agreement(Time::from_ticks(1), Some(ProcessId::new(0)));
        t.record_agreement(Time::from_ticks(2), None);
        t.record_agreement(Time::from_ticks(3), Some(ProcessId::new(0)));
        t.record_agreement(Time::from_ticks(4), Some(ProcessId::new(3)));
        assert_eq!(t.distinct_leaders(), 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert_eq!(t.current_agreement(), None);
        assert_eq!(t.last_change_at(), None);
        assert_eq!(t.distinct_leaders(), 0);
        assert_eq!(t.counters, TraceCounters::default());
    }
}
