//! Crash-failure injection.

use irs_types::{ProcessId, ProcessSet, Time};

/// A schedule of crash failures to inject into a simulation run.
///
/// The paper's failure model is crash-stop: a faulty process behaves
/// correctly until it halts, and it never recovers. The plan simply lists
/// `(process, time)` pairs; the engine stops invoking a crashed process's
/// callbacks and drops messages addressed to it from the crash time on
/// (messages already sent by the process remain in flight — links are
/// reliable).
///
/// # Example
///
/// ```
/// use irs_sim::CrashPlan;
/// use irs_types::{ProcessId, Time};
///
/// let plan = CrashPlan::new()
///     .crash(ProcessId::new(0), Time::from_ticks(500))
///     .crash(ProcessId::new(3), Time::from_ticks(1_000));
/// assert_eq!(plan.len(), 2);
/// assert!(plan.will_crash(ProcessId::new(3)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    crashes: Vec<(ProcessId, Time)>,
}

impl CrashPlan {
    /// A plan with no crashes.
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// Adds a crash of `pid` at time `at`.
    ///
    /// Adding the same process twice keeps only the earliest crash time.
    #[must_use]
    pub fn crash(mut self, pid: ProcessId, at: Time) -> Self {
        if let Some(existing) = self.crashes.iter_mut().find(|(p, _)| *p == pid) {
            existing.1 = existing.1.min(at);
        } else {
            self.crashes.push((pid, at));
        }
        self
    }

    /// Crashes the first `k` processes of the system at the given times
    /// (one entry per process, round-robin over `times`).
    ///
    /// Convenience for experiments that crash "up to t processes".
    #[must_use]
    pub fn crash_first(mut self, k: usize, times: &[Time]) -> Self {
        for i in 0..k {
            let at = times[i % times.len().max(1)];
            self = self.crash(ProcessId::new(i as u32), at);
        }
        self
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// Returns `true` if no crash is scheduled.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }

    /// Returns `true` if `pid` is scheduled to crash at some point.
    pub fn will_crash(&self, pid: ProcessId) -> bool {
        self.crashes.iter().any(|(p, _)| *p == pid)
    }

    /// The scheduled crash time of `pid`, if any.
    pub fn crash_time(&self, pid: ProcessId) -> Option<Time> {
        self.crashes
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, t)| *t)
    }

    /// Iterates over the `(process, time)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Time)> + '_ {
        self.crashes.iter().copied()
    }

    /// The set of processes that will have crashed by the end of the run,
    /// i.e. the *faulty* processes.
    pub fn faulty_set(&self, n: usize) -> ProcessSet {
        ProcessSet::from_ids(
            n,
            self.crashes
                .iter()
                .map(|(p, _)| *p)
                .filter(|p| p.index() < n),
        )
    }

    /// Validates the plan against a fault bound: at most `t` crashes, all of
    /// known processes.
    pub fn respects_bound(&self, n: usize, t: usize) -> bool {
        self.len() <= t && self.crashes.iter().all(|(p, _)| p.index() < n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan() {
        let p = CrashPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(!p.will_crash(ProcessId::new(0)));
        assert_eq!(p.crash_time(ProcessId::new(0)), None);
        assert!(p.respects_bound(4, 0));
    }

    #[test]
    fn duplicate_crash_keeps_earliest() {
        let p = CrashPlan::new()
            .crash(ProcessId::new(1), Time::from_ticks(100))
            .crash(ProcessId::new(1), Time::from_ticks(50));
        assert_eq!(p.len(), 1);
        assert_eq!(p.crash_time(ProcessId::new(1)), Some(Time::from_ticks(50)));
    }

    #[test]
    fn crash_first_crashes_prefix() {
        let p = CrashPlan::new().crash_first(3, &[Time::from_ticks(10), Time::from_ticks(20)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.crash_time(ProcessId::new(0)), Some(Time::from_ticks(10)));
        assert_eq!(p.crash_time(ProcessId::new(1)), Some(Time::from_ticks(20)));
        assert_eq!(p.crash_time(ProcessId::new(2)), Some(Time::from_ticks(10)));
    }

    #[test]
    fn faulty_set_and_bound() {
        let p = CrashPlan::new()
            .crash(ProcessId::new(2), Time::from_ticks(5))
            .crash(ProcessId::new(4), Time::from_ticks(9));
        let f = p.faulty_set(6);
        assert_eq!(f.to_vec(), vec![ProcessId::new(2), ProcessId::new(4)]);
        assert!(p.respects_bound(6, 2));
        assert!(!p.respects_bound(6, 1));
        assert!(!p.respects_bound(3, 2)); // p4 is not a process of a 3-process system
    }

    #[test]
    fn iter_yields_all() {
        let p = CrashPlan::new()
            .crash(ProcessId::new(0), Time::from_ticks(1))
            .crash(ProcessId::new(1), Time::from_ticks(2));
        assert_eq!(p.iter().count(), 2);
    }
}
