//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns `n` protocol instances, an [`Adversary`] that decides
//! message delays, a [`CrashPlan`], and a time-ordered [`EventQueue`]. It
//! repeatedly pops the earliest event, hands it to the affected protocol
//! instance, and schedules whatever that instance asked for. Everything is
//! deterministic for a given `(seed, configuration)` pair.
//!
//! Besides driving the protocols, the engine implements the *winning-message
//! gate*: when the adversary answers [`Delivery::AfterStar`] for a message,
//! the engine holds it until the star-centre message of the same
//! `(receiver, round)` key has been delivered, guaranteeing the centre's
//! `ALIVE(rn)` is received first (and hence among the first `n − t`).
//!
//! # Hot-path layout
//!
//! The protocols are broadcast-heavy — every receiving round each process
//! sends `ALIVE(rn, susp)` to all `n − 1` peers — so the engine is organised
//! to make the per-message cost independent of the payload and of `n`:
//!
//! * **Shared payloads.** [`Event::Deliver`] and the gate's hold buffer carry
//!   `Rc<P::Msg>`. A broadcast allocates the payload once in
//!   [`apply_actions`](Simulation) and fans out pointer clones; receivers get
//!   the payload by reference ([`Protocol::on_message`] takes `&Msg`), so a
//!   round of `n` broadcasts costs `n` allocations instead of `n²` deep
//!   `SuspVector` clones.
//! * **Dense per-process state.** Timer generations live in a plain
//!   `Vec<u64>` indexed by the (small, enumerable) raw [`TimerId`], not a
//!   `HashMap`. The winning-message gate keys `(receiver, round)` live in a
//!   per-receiver ring of recent rounds — sized by
//!   [`SimConfig::gate_window`] and allocated lazily the first time the
//!   adversary gates a message to that receiver, so an ungated receiver (or
//!   a whole ungated run) costs no gate memory even at `n = 256` — and held
//!   messages live in a token-checked slab whose deadline-release events
//!   keep links reliable even if a ring slot is recycled.
//! * **O(1) agreement tracking.** The system-wide leader agreement is
//!   maintained as per-candidate live vote counts: a process changing its
//!   `leader()` output moves one vote and compares one count against the
//!   live-process total, instead of rescanning all `n` processes on every
//!   change (the full scan survives only at start-up and on the ≤ `t`
//!   crashes of a run).
//! * **O(1) event queue.** The queue is a hierarchical timing wheel (see
//!   [`EventQueue`]): pushes and pops are constant-time slot operations and
//!   the `O(n²)` same-instant broadcast bursts share FIFO buckets, where a
//!   binary heap would pay `O(log len)` element moves per message.

use crate::adversary::{Adversary, Delivery};
use crate::crash::CrashPlan;
use crate::event::{Event, EventQueue};
use crate::rng::SimRng;
use crate::trace::{LeaderChange, Trace, TraceCounters};
use irs_types::{
    Actions, Destination, Duration, Introspect, ProcessId, Protocol, RoundNum, RoundTagged,
    Snapshot, Time, TimerId, TimerRequest,
};
use std::rc::Rc;
/// Static parameters of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Seed of the engine's random number generator (delays, jitter).
    pub seed: u64,
    /// The run stops when simulated time would exceed this horizon.
    pub horizon: Time,
    /// How many recent rounds of winning-message-gate state are kept per
    /// receiver (the ring size of [`GATE_WINDOW`]-style slots). The default
    /// is ample for every adversary in this workspace; larger values only
    /// matter if an adversary spreads a round's sends across more rounds of
    /// simultaneous gate activity than this.
    pub gate_window: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            horizon: Time::from_ticks(1_000_000),
            gate_window: GATE_WINDOW,
        }
    }
}

impl SimConfig {
    /// Creates a configuration with the given seed and horizon.
    pub fn new(seed: u64, horizon: Time) -> Self {
        SimConfig {
            seed,
            horizon,
            gate_window: GATE_WINDOW,
        }
    }

    /// Overrides the per-receiver gate-ring size (clamped to at least 1).
    #[must_use]
    pub fn with_gate_window(mut self, slots: usize) -> Self {
        self.gate_window = slots.max(1);
        self
    }
}

/// The final agreement reached by a run, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stabilization {
    /// The commonly elected (and still live) leader.
    pub leader: ProcessId,
    /// The time of the *last* change of the agreement state — i.e. the
    /// moment from which the leadership was never disturbed again within the
    /// run.
    pub at: Time,
}

/// Everything an experiment needs to know about a finished run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Simulated time when the run stopped.
    pub final_time: Time,
    /// Aggregate counters.
    pub counters: TraceCounters,
    /// Every transition of the system-wide leader agreement.
    pub leader_history: Vec<LeaderChange>,
    /// The final stable agreement, if the run ended with all live processes
    /// agreeing on a live leader.
    pub stabilization: Option<Stabilization>,
    /// Final snapshot of every process (`None` for crashed processes).
    pub final_snapshots: Vec<Option<Snapshot>>,
    /// Processes that crashed during the run.
    pub crashed: Vec<ProcessId>,
    /// The adversary's description, for experiment tables.
    pub adversary: String,
}

impl SimReport {
    /// Returns `true` if the run ended with a stable, live, common leader.
    pub fn is_stable(&self) -> bool {
        self.stabilization.is_some()
    }

    /// The stabilisation time in ticks (`None` if the run did not stabilise).
    pub fn stabilization_ticks(&self) -> Option<u64> {
        self.stabilization.map(|s| s.at.ticks())
    }

    /// The largest value ever reported as a timer value in the final
    /// snapshots (the bounded-timeout claim of Section 6 is about this).
    pub fn max_final_timer_value(&self) -> u64 {
        self.final_snapshots
            .iter()
            .flatten()
            .map(|s| s.timer_value)
            .max()
            .unwrap_or(0)
    }

    /// The largest suspicion level across all live processes at the end.
    pub fn max_final_susp_level(&self) -> u64 {
        self.final_snapshots
            .iter()
            .flatten()
            .map(|s| s.max_susp_level())
            .max()
            .unwrap_or(0)
    }
}

/// Default number of recent rounds of gate state kept per receiver
/// (overridable through [`SimConfig::with_gate_window`]).
///
/// Every send of a round-`rn` `ALIVE` happens at that round's broadcast
/// instant (the periodic timers of all processes fire in lockstep), so the
/// gate state of a key `(receiver, rn)` is only ever *consulted* at that one
/// instant; 64 rounds of slack is far beyond anything the adversaries
/// produce. Held messages whose slot is recycled are still delivered by
/// their deadline-release event — the window bounds memory, not reliability.
const GATE_WINDOW: usize = 64;

/// A message held by the winning-message gate, waiting in the hold slab.
struct HeldMsg<M> {
    token: u64,
    from: ProcessId,
    to: ProcessId,
    msg: Rc<M>,
    slack: Duration,
    /// When the message must be delivered even if the gate never opens.
    deadline_at: Time,
}

/// Gate state of one `(receiver, round)` key: the scheduled star-centre
/// delivery time and the slab indices of messages held behind it.
struct GateSlot {
    rn: RoundNum,
    star_at: Option<Time>,
    held: Vec<u32>,
    /// The earliest pending [`Event::ReleaseGate`] sweep for this slot's
    /// current round (`None` = no sweep pending). One sweep covers every
    /// message the slot holds, so a round that holds thousands of messages
    /// (every non-centre sender at a winning point, at large `n`) schedules
    /// one deadline event, not thousands. A message held later with an
    /// *earlier* deadline arms an additional, earlier sweep, so every
    /// message is still released no later than its own deadline even when an
    /// adversary hands out heterogeneous deadlines on one slot.
    sweep_at: Option<Time>,
}

impl GateSlot {
    fn vacant() -> Self {
        GateSlot {
            rn: RoundNum::ZERO,
            star_at: None,
            held: Vec::new(),
            sweep_at: None,
        }
    }
}

struct ProcSlot<P> {
    proto: P,
    crashed: bool,
    /// Timer generations, densely indexed by the raw `TimerId` (grown on
    /// demand; protocols use a handful of small ids).
    timer_gen: Vec<u64>,
    last_leader: ProcessId,
}

impl<P> ProcSlot<P> {
    fn bump_timer_gen(&mut self, id: TimerId) -> u64 {
        let i = id.raw() as usize;
        if i >= self.timer_gen.len() {
            self.timer_gen.resize(i + 1, 0);
        }
        self.timer_gen[i] += 1;
        self.timer_gen[i]
    }

    fn timer_gen(&self, id: TimerId) -> u64 {
        self.timer_gen.get(id.raw() as usize).copied().unwrap_or(0)
    }
}

/// A deterministic discrete-event simulation of `n` protocol instances under
/// a programmable adversary.
///
/// # Example
///
/// See the crate-level documentation of `irs-omega` and the `quickstart`
/// example of the workspace root; constructing a simulation requires a
/// protocol implementation, which this crate deliberately does not provide.
pub struct Simulation<P, A>
where
    P: Protocol + Introspect,
    P::Msg: RoundTagged,
    A: Adversary<P::Msg>,
{
    horizon: Time,
    now: Time,
    queue: EventQueue<Rc<P::Msg>>,
    procs: Vec<ProcSlot<P>>,
    adversary: A,
    rng: SimRng,
    trace: Trace,
    /// Winning-message gate state: per receiver, a ring of the
    /// `gate_window` most recent rounds. Rings are allocated lazily, the
    /// first time the adversary gates a message to that receiver — an
    /// ungated run (or receiver) costs no gate memory at all, which matters
    /// once `n` reaches the hundreds.
    gates: Vec<Option<Box<[GateSlot]>>>,
    gate_window: usize,
    /// `live_votes[l]` = number of live processes whose `leader()` output is
    /// currently `l`. Together with `live_count` this makes the system-wide
    /// agreement check O(1) per leader change (a full O(n) rescan happens
    /// only on a crash), where the seed engine rescanned all `n` processes
    /// on every change.
    live_votes: Vec<u32>,
    live_count: u32,
    /// Slab of held messages, indexed by the `slot` of
    /// [`Event::ReleaseHeld`]; `None` entries are free.
    held_slab: Vec<Option<HeldMsg<P::Msg>>>,
    /// Free slots of `held_slab`.
    held_free: Vec<u32>,
    next_token: u64,
    crash_plan: CrashPlan,
    started: bool,
    /// Reusable action buffer: one per engine, so the per-event callback
    /// costs no allocation once its capacity has warmed up.
    scratch: Actions<P::Msg>,
    /// Optional flight recorder; events are stamped with virtual-clock
    /// ticks, so identical `(seed, config)` runs record identical streams.
    recorder: Option<std::sync::Arc<irs_obs::FlightRecorder>>,
}

impl<P, A> core::fmt::Debug for Simulation<P, A>
where
    P: Protocol + Introspect,
    P::Msg: RoundTagged,
    A: Adversary<P::Msg>,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("n", &self.procs.len())
            .field("pending_events", &self.queue.len())
            .field("adversary", &self.adversary.describe())
            .finish_non_exhaustive()
    }
}

impl<P, A> Simulation<P, A>
where
    P: Protocol + Introspect,
    P::Msg: RoundTagged,
    A: Adversary<P::Msg>,
{
    /// Creates a simulation over the given protocol instances.
    ///
    /// `processes[i]` must be the instance whose `id()` is `ProcessId(i)`.
    ///
    /// # Panics
    ///
    /// Panics if the instances' ids are not `0..n` in order.
    pub fn new(config: SimConfig, processes: Vec<P>, adversary: A, crashes: CrashPlan) -> Self {
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(
                p.id(),
                ProcessId::new(i as u32),
                "process at index {i} reports id {}",
                p.id()
            );
        }
        let n = processes.len();
        let procs: Vec<ProcSlot<P>> = processes
            .into_iter()
            .map(|p| {
                let last_leader = p.leader();
                ProcSlot {
                    proto: p,
                    crashed: false,
                    timer_gen: Vec::new(),
                    last_leader,
                }
            })
            .collect();
        let mut live_votes = vec![0u32; n];
        for slot in &procs {
            if let Some(v) = live_votes.get_mut(slot.last_leader.index()) {
                *v += 1;
            }
        }
        Simulation {
            horizon: config.horizon,
            now: Time::ZERO,
            queue: EventQueue::new(),
            procs,
            adversary,
            rng: SimRng::from_seed(config.seed),
            trace: Trace::default(),
            gates: (0..n).map(|_| None).collect(),
            gate_window: config.gate_window.max(1),
            live_votes,
            live_count: n as u32,
            held_slab: Vec::new(),
            held_free: Vec::new(),
            next_token: 0,
            crash_plan: crashes,
            started: false,
            scratch: Actions::new(),
            recorder: None,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to a protocol instance (even if crashed, its last state is
    /// observable).
    pub fn process(&self, pid: ProcessId) -> &P {
        &self.procs[pid.index()].proto
    }

    /// Returns `true` if the process has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].crashed
    }

    /// The run trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The leader currently agreed on by every live process, if any.
    pub fn agreed_leader(&self) -> Option<ProcessId> {
        self.trace.current_agreement()
    }

    /// Starts the run (idempotent): invokes `on_start` on every process and
    /// schedules the crash plan.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let crashes: Vec<_> = self.crash_plan.iter().collect();
        for (pid, at) in crashes {
            if pid.index() < self.procs.len() {
                self.queue.push(at, Event::Crash { pid });
            }
        }
        for i in 0..self.procs.len() {
            let pid = ProcessId::new(i as u32);
            let mut out = std::mem::take(&mut self.scratch);
            self.procs[i].proto.on_start(&mut out);
            self.after_callback(pid, &mut out);
            self.scratch = out;
        }
        self.refresh_agreement();
    }

    /// Processes the next event. Returns `false` when the queue is empty or
    /// the horizon has been reached.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        if at > self.horizon {
            self.now = self.horizon;
            return false;
        }
        self.now = at;
        match event {
            Event::Deliver { from, to, msg } => {
                if self.procs[to.index()].crashed {
                    self.trace.counters.dropped_to_crashed += 1;
                } else {
                    self.trace.counters.messages_delivered += 1;
                    let mut out = std::mem::take(&mut self.scratch);
                    self.procs[to.index()]
                        .proto
                        .on_message(from, &msg, &mut out);
                    self.after_callback(to, &mut out);
                    self.scratch = out;
                }
            }
            Event::TimerFire {
                pid,
                timer,
                generation,
            } => {
                let slot = &mut self.procs[pid.index()];
                if slot.crashed {
                    return true;
                }
                if slot.timer_gen(timer) != generation {
                    return true; // superseded or cancelled
                }
                self.trace.counters.timer_fires += 1;
                let mut out = std::mem::take(&mut self.scratch);
                slot.proto.on_timer(timer, &mut out);
                self.after_callback(pid, &mut out);
                self.scratch = out;
            }
            Event::Crash { pid } => {
                if !self.procs[pid.index()].crashed {
                    self.procs[pid.index()].crashed = true;
                    self.trace.counters.crashes += 1;
                    // Retire the crashed process's vote; agreement may now
                    // form among the remaining live processes.
                    let voted = self.procs[pid.index()].last_leader;
                    if let Some(v) = self.live_votes.get_mut(voted.index()) {
                        *v -= 1;
                    }
                    self.live_count -= 1;
                    self.refresh_agreement();
                }
            }
            Event::ReleaseHeld { slot, token } => {
                let matches = self
                    .held_slab
                    .get(slot as usize)
                    .is_some_and(|e| e.as_ref().is_some_and(|h| h.token == token));
                if matches {
                    let h = self.free_held(slot);
                    self.trace.counters.gate_deadline_releases += 1;
                    self.queue.push(
                        self.now,
                        Event::Deliver {
                            from: h.from,
                            to: h.to,
                            msg: h.msg,
                        },
                    );
                }
            }
            Event::ReleaseGate { to, rn } => {
                // Sweep the slot if it still tracks `rn` (a recycled slot's
                // displaced messages carry their own release events). In the
                // common case — the star message opened the gate within the
                // same instant — the slot holds nothing and this is the only
                // residual cost of the whole round's held messages.
                let window = self.gate_window;
                let held = match self.gates[to.index()].as_mut() {
                    Some(ring) => {
                        let slot = &mut ring[(rn.value() % window as u64) as usize];
                        if slot.rn == rn && !slot.held.is_empty() {
                            std::mem::take(&mut slot.held)
                        } else {
                            if slot.rn == rn {
                                slot.sweep_at = None;
                            }
                            Vec::new()
                        }
                    }
                    None => Vec::new(),
                };
                if held.is_empty() {
                    return true;
                }
                // Release what is due; keep the rest and re-arm the sweep at
                // the earliest remaining deadline, so every message is still
                // delivered at exactly its own deadline tick.
                let mut remaining: Vec<u32> = Vec::new();
                let mut next_deadline: Option<Time> = None;
                for idx in held {
                    let due = self.held_slab[idx as usize]
                        .as_ref()
                        .map(|h| h.deadline_at)
                        .expect("held list entries are live");
                    if due <= self.now {
                        let h = self.free_held(idx);
                        self.trace.counters.gate_deadline_releases += 1;
                        self.queue.push(
                            self.now,
                            Event::Deliver {
                                from: h.from,
                                to: h.to,
                                msg: h.msg,
                            },
                        );
                    } else {
                        next_deadline = Some(next_deadline.map_or(due, |d| d.min(due)));
                        remaining.push(idx);
                    }
                }
                if let Some(ring) = self.gates[to.index()].as_mut() {
                    let slot = &mut ring[(rn.value() % window as u64) as usize];
                    if slot.rn == rn {
                        slot.held = remaining;
                        slot.sweep_at = next_deadline;
                        if let Some(at) = next_deadline {
                            self.queue.push(at, Event::ReleaseGate { to, rn });
                        }
                    }
                }
            }
        }
        true
    }

    /// Attaches a flight recorder; from now on every Ω leader change
    /// observed by the engine is recorded as a
    /// [`irs_obs::EventKind::LeaderChange`] event stamped with the
    /// virtual clock (ticks). Determinism is preserved: the recorder
    /// never reads wall time.
    pub fn attach_recorder(&mut self, recorder: std::sync::Arc<irs_obs::FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Runs until the horizon (or until no event is pending) and reports.
    pub fn run(&mut self) -> SimReport {
        self.start();
        while self.step() {}
        self.report()
    }

    /// Runs until the live processes have agreed on a live leader and that
    /// agreement has not changed for `quiet` ticks, or until the horizon.
    pub fn run_until_stable_for(&mut self, quiet: Duration) -> SimReport {
        self.start();
        loop {
            if !self.step() {
                break;
            }
            if let (Some(leader), Some(changed_at)) =
                (self.trace.current_agreement(), self.trace.last_change_at())
            {
                if !self.procs[leader.index()].crashed
                    && self.now.saturating_since(changed_at) >= quiet
                {
                    break;
                }
            }
        }
        self.report()
    }

    /// Builds the report for the current state of the run.
    pub fn report(&self) -> SimReport {
        let stabilization = match (self.trace.current_agreement(), self.trace.last_change_at()) {
            (Some(leader), Some(at))
                if leader.index() < self.procs.len() && !self.procs[leader.index()].crashed =>
            {
                Some(Stabilization { leader, at })
            }
            _ => None,
        };
        SimReport {
            final_time: self.now,
            counters: self.trace.counters,
            leader_history: self.trace.leader_history.clone(),
            stabilization,
            final_snapshots: self
                .procs
                .iter()
                .map(|s| {
                    if s.crashed {
                        None
                    } else {
                        Some(s.proto.snapshot())
                    }
                })
                .collect(),
            crashed: self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.crashed)
                .map(|(i, _)| ProcessId::new(i as u32))
                .collect(),
            adversary: self.adversary.describe(),
        }
    }

    fn after_callback(&mut self, pid: ProcessId, out: &mut Actions<P::Msg>) {
        // Most deliveries record no actions (the paper's processes only act
        // on round boundaries); skip the drain machinery for them.
        if !out.is_empty() {
            self.apply_actions(pid, out);
        }
        let new_leader = self.procs[pid.index()].proto.leader();
        let old_leader = self.procs[pid.index()].last_leader;
        if new_leader != old_leader {
            self.procs[pid.index()].last_leader = new_leader;
            if let Some(rec) = &self.recorder {
                rec.emit(
                    self.now.ticks(),
                    pid.index() as u32,
                    irs_obs::EventKind::LeaderChange,
                    u64::from(old_leader.index() as u32),
                    u64::from(new_leader.index() as u32),
                );
            }
            // O(1) agreement update: move this process's vote. Only the
            // bucket that gained a vote can now hold every live vote, so no
            // rescan is needed. Votes for out-of-range leader ids (no
            // protocol in the workspace emits one, but `leader()` does not
            // forbid it) are simply not bucketed, which can only prevent a
            // count from reaching `live_count` — the conservative direction.
            if let Some(v) = self.live_votes.get_mut(old_leader.index()) {
                *v -= 1;
            }
            let agreed = match self.live_votes.get_mut(new_leader.index()) {
                Some(v) => {
                    *v += 1;
                    (*v == self.live_count).then_some(new_leader)
                }
                None => None,
            };
            self.trace.record_agreement(self.now, agreed);
        }
    }

    /// Recomputes the agreement from the maintained vote counts; O(1) apart
    /// from finding one live process. Used at start-up and after a crash —
    /// per-delivery leader changes take the incremental path in
    /// [`Simulation::after_callback`].
    fn refresh_agreement(&mut self) {
        let agreed = if self.live_count == 0 {
            None
        } else {
            // All live processes agree iff the candidate named by any one of
            // them holds every live vote.
            self.procs
                .iter()
                .find(|s| !s.crashed)
                .map(|s| s.last_leader)
                .filter(|c| self.live_votes.get(c.index()).copied() == Some(self.live_count))
        };
        self.trace.record_agreement(self.now, agreed);
    }

    fn apply_actions(&mut self, pid: ProcessId, actions: &mut Actions<P::Msg>) {
        let n = self.procs.len();
        for outbound in actions.drain_sends() {
            // One allocation per send action: the broadcast fan-out below
            // clones the pointer, not the payload. Payload metadata (size,
            // constrained round) is computed once per action too — at
            // n = 256 a broadcast otherwise re-derives it 255 times.
            let size = outbound.msg.estimated_size() as u64;
            let round = outbound.msg.constrained_round();
            let payload = Rc::new(outbound.msg);
            // Counters are bumped once per action with the fan-out count —
            // not once per receiver.
            let targets = match outbound.dest {
                Destination::To(_) => 1,
                Destination::AllOthers => (n - 1) as u64,
                Destination::All => n as u64,
            };
            self.trace.counters.messages_sent += targets;
            self.trace.counters.bytes_sent += size * targets;
            if round.is_some() {
                self.trace.counters.constrained_sent += targets;
            } else {
                self.trace.counters.other_sent += targets;
            }
            match outbound.dest {
                Destination::To(q) => self.send_one(pid, q, payload, round),
                Destination::AllOthers => {
                    for q in (0..n)
                        .map(|i| ProcessId::new(i as u32))
                        .filter(|q| *q != pid)
                    {
                        self.send_one(pid, q, Rc::clone(&payload), round);
                    }
                }
                Destination::All => {
                    for q in (0..n).map(|i| ProcessId::new(i as u32)) {
                        self.send_one(pid, q, Rc::clone(&payload), round);
                    }
                }
            }
        }
        for request in actions.drain_timers() {
            self.arm_timer(pid, request);
        }
        for id in actions.drain_cancels() {
            self.procs[pid.index()].bump_timer_gen(id);
        }
    }

    fn arm_timer(&mut self, pid: ProcessId, request: TimerRequest) {
        let generation = self.procs[pid.index()].bump_timer_gen(request.id);
        self.trace.counters.timers_set += 1;
        self.queue.push(
            self.now + request.after,
            Event::TimerFire {
                pid,
                timer: request.id,
                generation,
            },
        );
    }

    /// The gate ring slot currently associated with `(to, rn)`, claiming it
    /// from an older round if necessary. The receiver's ring is allocated on
    /// first use. Returns `None` for a stale round (older than the slot's
    /// current owner), which callers treat as "no gate state".
    ///
    /// A free function over split fields (not `&mut self`) so callers can
    /// keep using the queue and the hold slab while the returned slot borrow
    /// is live.
    fn gate_slot<'a>(
        gates: &'a mut [Option<Box<[GateSlot]>>],
        window: usize,
        queue: &mut EventQueue<Rc<P::Msg>>,
        held_slab: &[Option<HeldMsg<P::Msg>>],
        to: ProcessId,
        rn: RoundNum,
    ) -> Option<&'a mut GateSlot> {
        let ring = gates[to.index()].get_or_insert_with(|| {
            (0..window)
                .map(|_| GateSlot::vacant())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        let slot = &mut ring[(rn.value() % window as u64) as usize];
        if slot.rn == rn {
            return Some(slot);
        }
        if rn > slot.rn {
            // Recycle the slot for the newer round. Held messages of the
            // displaced round stay in the slab; each gets an individual
            // deadline-release event (the displaced round's sweep no longer
            // matches the slot), so links stay reliable.
            for idx in slot.held.drain(..) {
                if let Some(h) = held_slab.get(idx as usize).and_then(|e| e.as_ref()) {
                    queue.push(
                        h.deadline_at,
                        Event::ReleaseHeld {
                            slot: idx,
                            token: h.token,
                        },
                    );
                }
            }
            slot.rn = rn;
            slot.star_at = None;
            slot.sweep_at = None;
            return Some(slot);
        }
        None
    }

    fn hold_msg(&mut self, held: HeldMsg<P::Msg>) -> u32 {
        match self.held_free.pop() {
            Some(slot) => {
                self.held_slab[slot as usize] = Some(held);
                slot
            }
            None => {
                self.held_slab.push(Some(held));
                (self.held_slab.len() - 1) as u32
            }
        }
    }

    fn free_held(&mut self, slot: u32) -> HeldMsg<P::Msg> {
        let h = self.held_slab[slot as usize]
            .take()
            .expect("freeing a vacant hold slot");
        self.held_free.push(slot);
        h
    }

    fn send_one(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: Rc<P::Msg>,
        round: Option<RoundNum>,
    ) {
        debug_assert!(
            to.index() < self.procs.len(),
            "send to unknown process {to}"
        );
        let decision = self
            .adversary
            .delivery(self.now, from, to, &msg, &mut self.rng);
        match decision {
            Delivery::After(delay) => {
                self.queue
                    .push(self.now + delay, Event::Deliver { from, to, msg });
            }
            Delivery::StarAfter(delay) => {
                let rn = round.unwrap_or(RoundNum::ZERO);
                let star_at = self.now + delay;
                let mut released: Vec<u32> = Vec::new();
                if let Some(slot) = Self::gate_slot(
                    &mut self.gates,
                    self.gate_window,
                    &mut self.queue,
                    &self.held_slab,
                    to,
                    rn,
                ) {
                    slot.star_at = Some(match slot.star_at {
                        Some(existing) => existing.min(star_at),
                        None => star_at,
                    });
                    // Open the gate: every message currently held on this key
                    // is scheduled strictly after the star message.
                    released = std::mem::take(&mut slot.held);
                }
                for idx in released {
                    let h = self.free_held(idx);
                    self.queue.push(
                        star_at + h.slack,
                        Event::Deliver {
                            from: h.from,
                            to,
                            msg: h.msg,
                        },
                    );
                }
                self.queue.push(star_at, Event::Deliver { from, to, msg });
            }
            Delivery::AfterStar { slack, deadline } => {
                let rn = round.unwrap_or(RoundNum::ZERO);
                let now = self.now;
                let star_at = Self::gate_slot(
                    &mut self.gates,
                    self.gate_window,
                    &mut self.queue,
                    &self.held_slab,
                    to,
                    rn,
                )
                .and_then(|slot| slot.star_at);
                match star_at {
                    Some(star_at) => {
                        let at = if star_at > now {
                            star_at + slack
                        } else {
                            now + slack
                        };
                        self.queue.push(at, Event::Deliver { from, to, msg });
                    }
                    None => {
                        self.trace.counters.messages_held += 1;
                        let token = self.next_token;
                        self.next_token += 1;
                        let deadline_at = now + deadline;
                        let idx = self.hold_msg(HeldMsg {
                            token,
                            from,
                            to,
                            msg,
                            slack,
                            deadline_at,
                        });
                        match Self::gate_slot(
                            &mut self.gates,
                            self.gate_window,
                            &mut self.queue,
                            &self.held_slab,
                            to,
                            rn,
                        ) {
                            Some(slot) => {
                                slot.held.push(idx);
                                // Arm (or advance) the sweep so one is always
                                // pending at or before the earliest held
                                // deadline of the slot.
                                if slot.sweep_at.is_none_or(|at| deadline_at < at) {
                                    slot.sweep_at = Some(deadline_at);
                                    self.queue.push(deadline_at, Event::ReleaseGate { to, rn });
                                }
                            }
                            // Stale round: no slot tracks the message, so it
                            // keeps an individual deadline release.
                            None => self
                                .queue
                                .push(deadline_at, Event::ReleaseHeld { slot: idx, token }),
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::basic::FixedDelay;
    use crate::adversary::DelayDist;
    use irs_types::LeaderOracle;

    /// A tiny test protocol: every process periodically broadcasts a beacon
    /// carrying its id; each process elects the smallest id it has heard from
    /// (including itself) within the last few beacons. It is *not* a correct
    /// Ω implementation — it exists to exercise the engine mechanics
    /// (timers, broadcasts, crashes, agreement tracking) with something
    /// simple and predictable under a synchronous network.
    #[derive(Debug)]
    struct Beacon {
        id: ProcessId,
        n: usize,
        heard: Vec<u64>,
        ticks: u64,
    }

    #[derive(Clone, Debug)]
    struct BeaconMsg {
        round: RoundNum,
    }

    impl RoundTagged for BeaconMsg {
        fn constrained_round(&self) -> Option<RoundNum> {
            Some(self.round)
        }
    }

    const TICK: TimerId = TimerId::new(0);

    impl Beacon {
        fn new(id: ProcessId, n: usize) -> Self {
            Beacon {
                id,
                n,
                heard: vec![0; n],
                ticks: 0,
            }
        }
    }

    impl Protocol for Beacon {
        type Msg = BeaconMsg;

        fn id(&self) -> ProcessId {
            self.id
        }

        fn on_start(&mut self, out: &mut Actions<BeaconMsg>) {
            out.set_timer(TICK, Duration::from_ticks(10));
        }

        fn on_message(&mut self, from: ProcessId, _msg: &BeaconMsg, _out: &mut Actions<BeaconMsg>) {
            self.heard[from.index()] = self.ticks.max(1);
        }

        fn on_timer(&mut self, _timer: TimerId, out: &mut Actions<BeaconMsg>) {
            self.ticks += 1;
            self.heard[self.id.index()] = self.ticks;
            out.broadcast_others(BeaconMsg {
                round: RoundNum::new(self.ticks),
            });
            out.set_timer(TICK, Duration::from_ticks(10));
        }
    }

    impl LeaderOracle for Beacon {
        fn leader(&self) -> ProcessId {
            // Smallest id heard from within the last 3 beacons.
            let cutoff = self.ticks.saturating_sub(3);
            (0..self.n)
                .map(|i| ProcessId::new(i as u32))
                .find(|p| self.heard[p.index()] > cutoff)
                .unwrap_or(self.id)
        }
    }

    impl Introspect for Beacon {
        fn snapshot(&self) -> Snapshot {
            Snapshot {
                leader: self.leader(),
                sending_round: self.ticks,
                receiving_round: self.ticks,
                timer_value: 10,
                susp_levels: Vec::new(),
                extra: vec![(irs_obs::names::TICKS, self.ticks)],
            }
        }
    }

    fn build(n: usize, horizon: u64, crashes: CrashPlan) -> Simulation<Beacon, FixedDelay> {
        let procs = (0..n)
            .map(|i| Beacon::new(ProcessId::new(i as u32), n))
            .collect();
        Simulation::new(
            SimConfig::new(7, Time::from_ticks(horizon)),
            procs,
            FixedDelay::new(Duration::from_ticks(2)),
            crashes,
        )
    }

    #[test]
    fn beacons_agree_on_smallest_id() {
        let mut sim = build(4, 2000, CrashPlan::new());
        let report = sim.run();
        assert!(report.is_stable(), "history: {:?}", report.leader_history);
        assert_eq!(report.stabilization.unwrap().leader, ProcessId::new(0));
        assert!(report.counters.messages_sent > 100);
        assert_eq!(report.counters.crashes, 0);
        assert!(report.final_snapshots.iter().all(|s| s.is_some()));
    }

    #[test]
    fn crash_of_leader_moves_agreement() {
        let plan = CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(500));
        let mut sim = build(4, 3000, plan);
        let report = sim.run();
        assert_eq!(report.crashed, vec![ProcessId::new(0)]);
        assert!(report.is_stable());
        assert_eq!(report.stabilization.unwrap().leader, ProcessId::new(1));
        assert!(report.final_snapshots[0].is_none());
        assert!(report.counters.dropped_to_crashed > 0);
    }

    #[test]
    fn run_until_stable_stops_early() {
        let mut sim = build(3, 1_000_000, CrashPlan::new());
        let report = sim.run_until_stable_for(Duration::from_ticks(200));
        assert!(report.is_stable());
        assert!(report.final_time < Time::from_ticks(10_000));
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = |seed| {
            let procs = (0..5)
                .map(|i| Beacon::new(ProcessId::new(i as u32), 5))
                .collect();
            let mut sim = Simulation::new(
                SimConfig::new(seed, Time::from_ticks(3000)),
                procs,
                crate::adversary::basic::RandomDelay::new(DelayDist::uniform(
                    Duration::from_ticks(1),
                    Duration::from_ticks(9),
                )),
                CrashPlan::new().crash(ProcessId::new(1), Time::from_ticks(700)),
            );
            let r = sim.run();
            (r.counters, r.leader_history.len(), r.stabilization)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0.messages_delivered, 0);
    }

    #[test]
    fn timer_superseding_prevents_stale_fires() {
        /// A protocol that re-arms the same timer twice in a row; only the
        /// second arming may fire.
        #[derive(Debug)]
        struct Rearm {
            id: ProcessId,
            fires: u64,
        }
        #[derive(Clone, Debug)]
        struct NoMsg;
        impl RoundTagged for NoMsg {
            fn constrained_round(&self) -> Option<RoundNum> {
                None
            }
        }
        impl Protocol for Rearm {
            type Msg = NoMsg;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_start(&mut self, out: &mut Actions<NoMsg>) {
                out.set_timer(TimerId::new(0), Duration::from_ticks(5));
                out.set_timer(TimerId::new(0), Duration::from_ticks(50));
            }
            fn on_message(&mut self, _: ProcessId, _: &NoMsg, _: &mut Actions<NoMsg>) {}
            fn on_timer(&mut self, _: TimerId, _: &mut Actions<NoMsg>) {
                self.fires += 1;
            }
        }
        impl LeaderOracle for Rearm {
            fn leader(&self) -> ProcessId {
                ProcessId::new(0)
            }
        }
        impl Introspect for Rearm {
            fn snapshot(&self) -> Snapshot {
                Snapshot::default()
            }
        }
        let procs = vec![
            Rearm {
                id: ProcessId::new(0),
                fires: 0,
            },
            Rearm {
                id: ProcessId::new(1),
                fires: 0,
            },
        ];
        let mut sim = Simulation::new(
            SimConfig::new(1, Time::from_ticks(1000)),
            procs,
            FixedDelay::new(Duration::from_ticks(1)),
            CrashPlan::new(),
        );
        let report = sim.run();
        assert_eq!(sim.process(ProcessId::new(0)).fires, 1);
        assert_eq!(report.counters.timer_fires, 2);
        assert_eq!(report.counters.timers_set, 4);
    }

    #[test]
    #[should_panic(expected = "reports id")]
    fn mismatched_ids_panic() {
        let procs = vec![
            Beacon::new(ProcessId::new(1), 2),
            Beacon::new(ProcessId::new(0), 2),
        ];
        let _ = Simulation::new(
            SimConfig::default(),
            procs,
            FixedDelay::new(Duration::from_ticks(1)),
            CrashPlan::new(),
        );
    }
}
