//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns `n` protocol instances, an [`Adversary`] that decides
//! message delays, a [`CrashPlan`], and a time-ordered [`EventQueue`]. It
//! repeatedly pops the earliest event, hands it to the affected protocol
//! instance, and schedules whatever that instance asked for. Everything is
//! deterministic for a given `(seed, configuration)` pair.
//!
//! Besides driving the protocols, the engine implements the *winning-message
//! gate*: when the adversary answers [`Delivery::AfterStar`] for a message,
//! the engine holds it until the star-centre message of the same
//! `(receiver, round)` key has been delivered, guaranteeing the centre's
//! `ALIVE(rn)` is received first (and hence among the first `n − t`).

use crate::adversary::{Adversary, Delivery};
use crate::crash::CrashPlan;
use crate::event::{Event, EventQueue, HoldKey};
use crate::rng::SimRng;
use crate::trace::{LeaderChange, Trace, TraceCounters};
use irs_types::{
    Actions, Destination, Duration, Introspect, ProcessId, Protocol, RoundNum, RoundTagged,
    Snapshot, Time, TimerId, TimerRequest,
};
use std::collections::HashMap;

/// Static parameters of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Seed of the engine's random number generator (delays, jitter).
    pub seed: u64,
    /// The run stops when simulated time would exceed this horizon.
    pub horizon: Time,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            horizon: Time::from_ticks(1_000_000),
        }
    }
}

impl SimConfig {
    /// Creates a configuration with the given seed and horizon.
    pub fn new(seed: u64, horizon: Time) -> Self {
        SimConfig { seed, horizon }
    }
}

/// The final agreement reached by a run, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stabilization {
    /// The commonly elected (and still live) leader.
    pub leader: ProcessId,
    /// The time of the *last* change of the agreement state — i.e. the
    /// moment from which the leadership was never disturbed again within the
    /// run.
    pub at: Time,
}

/// Everything an experiment needs to know about a finished run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Simulated time when the run stopped.
    pub final_time: Time,
    /// Aggregate counters.
    pub counters: TraceCounters,
    /// Every transition of the system-wide leader agreement.
    pub leader_history: Vec<LeaderChange>,
    /// The final stable agreement, if the run ended with all live processes
    /// agreeing on a live leader.
    pub stabilization: Option<Stabilization>,
    /// Final snapshot of every process (`None` for crashed processes).
    pub final_snapshots: Vec<Option<Snapshot>>,
    /// Processes that crashed during the run.
    pub crashed: Vec<ProcessId>,
    /// The adversary's description, for experiment tables.
    pub adversary: String,
}

impl SimReport {
    /// Returns `true` if the run ended with a stable, live, common leader.
    pub fn is_stable(&self) -> bool {
        self.stabilization.is_some()
    }

    /// The stabilisation time in ticks (`None` if the run did not stabilise).
    pub fn stabilization_ticks(&self) -> Option<u64> {
        self.stabilization.map(|s| s.at.ticks())
    }

    /// The largest value ever reported as a timer value in the final
    /// snapshots (the bounded-timeout claim of Section 6 is about this).
    pub fn max_final_timer_value(&self) -> u64 {
        self.final_snapshots
            .iter()
            .flatten()
            .map(|s| s.timer_value)
            .max()
            .unwrap_or(0)
    }

    /// The largest suspicion level across all live processes at the end.
    pub fn max_final_susp_level(&self) -> u64 {
        self.final_snapshots
            .iter()
            .flatten()
            .map(|s| s.max_susp_level())
            .max()
            .unwrap_or(0)
    }
}

struct HeldMsg<M> {
    token: u64,
    from: ProcessId,
    msg: M,
    slack: Duration,
}

struct ProcSlot<P> {
    proto: P,
    crashed: bool,
    timer_gen: HashMap<TimerId, u64>,
    last_leader: ProcessId,
}

/// A deterministic discrete-event simulation of `n` protocol instances under
/// a programmable adversary.
///
/// # Example
///
/// See the crate-level documentation of `irs-omega` and the `quickstart`
/// example of the workspace root; constructing a simulation requires a
/// protocol implementation, which this crate deliberately does not provide.
pub struct Simulation<P, A>
where
    P: Protocol + Introspect,
    P::Msg: RoundTagged,
    A: Adversary<P::Msg>,
{
    horizon: Time,
    now: Time,
    queue: EventQueue<P::Msg>,
    procs: Vec<ProcSlot<P>>,
    adversary: A,
    rng: SimRng,
    trace: Trace,
    /// Scheduled delivery time of the star-centre message per gate key.
    star_time: HashMap<HoldKey, Time>,
    /// Messages held by the winning-message gate, per gate key.
    held: HashMap<HoldKey, Vec<HeldMsg<P::Msg>>>,
    next_token: u64,
    crash_plan: CrashPlan,
    started: bool,
}

impl<P, A> core::fmt::Debug for Simulation<P, A>
where
    P: Protocol + Introspect,
    P::Msg: RoundTagged,
    A: Adversary<P::Msg>,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("n", &self.procs.len())
            .field("pending_events", &self.queue.len())
            .field("adversary", &self.adversary.describe())
            .finish_non_exhaustive()
    }
}

impl<P, A> Simulation<P, A>
where
    P: Protocol + Introspect,
    P::Msg: RoundTagged,
    A: Adversary<P::Msg>,
{
    /// Creates a simulation over the given protocol instances.
    ///
    /// `processes[i]` must be the instance whose `id()` is `ProcessId(i)`.
    ///
    /// # Panics
    ///
    /// Panics if the instances' ids are not `0..n` in order.
    pub fn new(config: SimConfig, processes: Vec<P>, adversary: A, crashes: CrashPlan) -> Self {
        for (i, p) in processes.iter().enumerate() {
            assert_eq!(
                p.id(),
                ProcessId::new(i as u32),
                "process at index {i} reports id {}",
                p.id()
            );
        }
        let procs = processes
            .into_iter()
            .map(|p| {
                let last_leader = p.leader();
                ProcSlot {
                    proto: p,
                    crashed: false,
                    timer_gen: HashMap::new(),
                    last_leader,
                }
            })
            .collect();
        Simulation {
            horizon: config.horizon,
            now: Time::ZERO,
            queue: EventQueue::new(),
            procs,
            adversary,
            rng: SimRng::from_seed(config.seed),
            trace: Trace::default(),
            star_time: HashMap::new(),
            held: HashMap::new(),
            next_token: 0,
            crash_plan: crashes,
            started: false,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to a protocol instance (even if crashed, its last state is
    /// observable).
    pub fn process(&self, pid: ProcessId) -> &P {
        &self.procs[pid.index()].proto
    }

    /// Returns `true` if the process has crashed.
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.procs[pid.index()].crashed
    }

    /// The run trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The leader currently agreed on by every live process, if any.
    pub fn agreed_leader(&self) -> Option<ProcessId> {
        self.trace.current_agreement()
    }

    /// Starts the run (idempotent): invokes `on_start` on every process and
    /// schedules the crash plan.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let crashes: Vec<_> = self.crash_plan.iter().collect();
        for (pid, at) in crashes {
            if pid.index() < self.procs.len() {
                self.queue.push(at, Event::Crash { pid });
            }
        }
        for i in 0..self.procs.len() {
            let pid = ProcessId::new(i as u32);
            let mut out = Actions::new();
            self.procs[i].proto.on_start(&mut out);
            self.after_callback(pid, out);
        }
        self.refresh_agreement();
    }

    /// Processes the next event. Returns `false` when the queue is empty or
    /// the horizon has been reached.
    pub fn step(&mut self) -> bool {
        self.start();
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        if at > self.horizon {
            self.now = self.horizon;
            return false;
        }
        self.now = at;
        match event {
            Event::Deliver { from, to, msg } => {
                if self.procs[to.index()].crashed {
                    self.trace.counters.dropped_to_crashed += 1;
                } else {
                    self.trace.counters.messages_delivered += 1;
                    let mut out = Actions::new();
                    self.procs[to.index()].proto.on_message(from, msg, &mut out);
                    self.after_callback(to, out);
                }
            }
            Event::TimerFire { pid, timer, generation } => {
                let slot = &mut self.procs[pid.index()];
                if slot.crashed {
                    return true;
                }
                if slot.timer_gen.get(&timer).copied().unwrap_or(0) != generation {
                    return true; // superseded or cancelled
                }
                self.trace.counters.timer_fires += 1;
                let mut out = Actions::new();
                slot.proto.on_timer(timer, &mut out);
                self.after_callback(pid, out);
            }
            Event::Crash { pid } => {
                if !self.procs[pid.index()].crashed {
                    self.procs[pid.index()].crashed = true;
                    self.trace.counters.crashes += 1;
                    self.refresh_agreement();
                }
            }
            Event::ReleaseHeld { key, token } => {
                if let Some(list) = self.held.get_mut(&key) {
                    if let Some(pos) = list.iter().position(|h| h.token == token) {
                        let h = list.remove(pos);
                        if list.is_empty() {
                            self.held.remove(&key);
                        }
                        self.trace.counters.gate_deadline_releases += 1;
                        self.queue.push(
                            self.now,
                            Event::Deliver { from: h.from, to: key.0, msg: h.msg },
                        );
                    }
                }
            }
        }
        true
    }

    /// Runs until the horizon (or until no event is pending) and reports.
    pub fn run(&mut self) -> SimReport {
        self.start();
        while self.step() {}
        self.report()
    }

    /// Runs until the live processes have agreed on a live leader and that
    /// agreement has not changed for `quiet` ticks, or until the horizon.
    pub fn run_until_stable_for(&mut self, quiet: Duration) -> SimReport {
        self.start();
        loop {
            if !self.step() {
                break;
            }
            if let (Some(leader), Some(changed_at)) =
                (self.trace.current_agreement(), self.trace.last_change_at())
            {
                if !self.procs[leader.index()].crashed
                    && self.now.saturating_since(changed_at) >= quiet
                {
                    break;
                }
            }
        }
        self.report()
    }

    /// Builds the report for the current state of the run.
    pub fn report(&self) -> SimReport {
        let stabilization = match (self.trace.current_agreement(), self.trace.last_change_at()) {
            (Some(leader), Some(at))
                if leader.index() < self.procs.len() && !self.procs[leader.index()].crashed =>
            {
                Some(Stabilization { leader, at })
            }
            _ => None,
        };
        SimReport {
            final_time: self.now,
            counters: self.trace.counters,
            leader_history: self.trace.leader_history.clone(),
            stabilization,
            final_snapshots: self
                .procs
                .iter()
                .map(|s| if s.crashed { None } else { Some(s.proto.snapshot()) })
                .collect(),
            crashed: self
                .procs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.crashed)
                .map(|(i, _)| ProcessId::new(i as u32))
                .collect(),
            adversary: self.adversary.describe(),
        }
    }

    fn after_callback(&mut self, pid: ProcessId, out: Actions<P::Msg>) {
        self.apply_actions(pid, out);
        let new_leader = self.procs[pid.index()].proto.leader();
        if new_leader != self.procs[pid.index()].last_leader {
            self.procs[pid.index()].last_leader = new_leader;
            self.refresh_agreement();
        }
    }

    fn refresh_agreement(&mut self) {
        let mut live = self.procs.iter().filter(|s| !s.crashed);
        let agreed = match live.next() {
            None => None,
            Some(first) => {
                let candidate = first.last_leader;
                if live.all(|s| s.last_leader == candidate) {
                    Some(candidate)
                } else {
                    None
                }
            }
        };
        self.trace.record_agreement(self.now, agreed);
    }

    fn apply_actions(&mut self, pid: ProcessId, actions: Actions<P::Msg>) {
        let n = self.procs.len();
        let (sends, timers, cancels) = actions.into_parts();
        for outbound in sends {
            match outbound.dest {
                Destination::To(q) => self.send_one(pid, q, outbound.msg),
                Destination::AllOthers => {
                    for q in (0..n).map(|i| ProcessId::new(i as u32)).filter(|q| *q != pid) {
                        self.send_one(pid, q, outbound.msg.clone());
                    }
                }
                Destination::All => {
                    for q in (0..n).map(|i| ProcessId::new(i as u32)) {
                        self.send_one(pid, q, outbound.msg.clone());
                    }
                }
            }
        }
        for request in timers {
            self.arm_timer(pid, request);
        }
        for id in cancels {
            let slot = &mut self.procs[pid.index()];
            *slot.timer_gen.entry(id).or_insert(0) += 1;
        }
    }

    fn arm_timer(&mut self, pid: ProcessId, request: TimerRequest) {
        let slot = &mut self.procs[pid.index()];
        let gen = slot.timer_gen.entry(request.id).or_insert(0);
        *gen += 1;
        let generation = *gen;
        self.trace.counters.timers_set += 1;
        self.queue.push(
            self.now + request.after,
            Event::TimerFire { pid, timer: request.id, generation },
        );
    }

    fn send_one(&mut self, from: ProcessId, to: ProcessId, msg: P::Msg) {
        debug_assert!(to.index() < self.procs.len(), "send to unknown process {to}");
        self.trace.counters.messages_sent += 1;
        self.trace.counters.bytes_sent += msg.estimated_size() as u64;
        if msg.constrained_round().is_some() {
            self.trace.counters.constrained_sent += 1;
        } else {
            self.trace.counters.other_sent += 1;
        }
        let decision = self.adversary.delivery(self.now, from, to, &msg, &mut self.rng);
        match decision {
            Delivery::After(delay) => {
                self.queue.push(self.now + delay, Event::Deliver { from, to, msg });
            }
            Delivery::StarAfter(delay) => {
                let key: HoldKey = (to, msg.constrained_round().unwrap_or(RoundNum::ZERO));
                let star_at = self.now + delay;
                let entry = self.star_time.entry(key).or_insert(star_at);
                if star_at < *entry {
                    *entry = star_at;
                }
                // Open the gate: schedule every message currently held on
                // this key strictly after the star message.
                if let Some(held) = self.held.remove(&key) {
                    for h in held {
                        self.queue.push(
                            star_at + h.slack,
                            Event::Deliver { from: h.from, to, msg: h.msg },
                        );
                    }
                }
                self.queue.push(star_at, Event::Deliver { from, to, msg });
                self.maybe_prune_star_times();
            }
            Delivery::AfterStar { slack, deadline } => {
                let key: HoldKey = (to, msg.constrained_round().unwrap_or(RoundNum::ZERO));
                if let Some(&star_at) = self.star_time.get(&key) {
                    let at = if star_at > self.now { star_at + slack } else { self.now + slack };
                    self.queue.push(at, Event::Deliver { from, to, msg });
                } else {
                    self.trace.counters.messages_held += 1;
                    let token = self.next_token;
                    self.next_token += 1;
                    self.held.entry(key).or_default().push(HeldMsg { token, from, msg, slack });
                    self.queue.push(self.now + deadline, Event::ReleaseHeld { key, token });
                }
            }
        }
    }

    /// Keeps the star-time map from growing without bound over very long
    /// runs: old entries are only useful for extremely late messages of old
    /// rounds, for which missing the gate is harmless (the round is closed).
    fn maybe_prune_star_times(&mut self) {
        const LIMIT: usize = 8192;
        if self.star_time.len() > LIMIT {
            let now = self.now;
            self.star_time
                .retain(|_, &mut at| now.saturating_since(at) < Duration::from_ticks(100_000));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::basic::FixedDelay;
    use crate::adversary::DelayDist;
    use irs_types::LeaderOracle;

    /// A tiny test protocol: every process periodically broadcasts a beacon
    /// carrying its id; each process elects the smallest id it has heard from
    /// (including itself) within the last few beacons. It is *not* a correct
    /// Ω implementation — it exists to exercise the engine mechanics
    /// (timers, broadcasts, crashes, agreement tracking) with something
    /// simple and predictable under a synchronous network.
    #[derive(Debug)]
    struct Beacon {
        id: ProcessId,
        n: usize,
        heard: Vec<u64>,
        ticks: u64,
    }

    #[derive(Clone, Debug)]
    struct BeaconMsg {
        round: RoundNum,
    }

    impl RoundTagged for BeaconMsg {
        fn constrained_round(&self) -> Option<RoundNum> {
            Some(self.round)
        }
    }

    const TICK: TimerId = TimerId::new(0);

    impl Beacon {
        fn new(id: ProcessId, n: usize) -> Self {
            Beacon { id, n, heard: vec![0; n], ticks: 0 }
        }
    }

    impl Protocol for Beacon {
        type Msg = BeaconMsg;

        fn id(&self) -> ProcessId {
            self.id
        }

        fn on_start(&mut self, out: &mut Actions<BeaconMsg>) {
            out.set_timer(TICK, Duration::from_ticks(10));
        }

        fn on_message(&mut self, from: ProcessId, _msg: BeaconMsg, _out: &mut Actions<BeaconMsg>) {
            self.heard[from.index()] = self.ticks.max(1);
        }

        fn on_timer(&mut self, _timer: TimerId, out: &mut Actions<BeaconMsg>) {
            self.ticks += 1;
            self.heard[self.id.index()] = self.ticks;
            out.broadcast_others(BeaconMsg { round: RoundNum::new(self.ticks) });
            out.set_timer(TICK, Duration::from_ticks(10));
        }
    }

    impl LeaderOracle for Beacon {
        fn leader(&self) -> ProcessId {
            // Smallest id heard from within the last 3 beacons.
            let cutoff = self.ticks.saturating_sub(3);
            (0..self.n)
                .map(|i| ProcessId::new(i as u32))
                .find(|p| self.heard[p.index()] > cutoff)
                .unwrap_or(self.id)
        }
    }

    impl Introspect for Beacon {
        fn snapshot(&self) -> Snapshot {
            Snapshot {
                leader: self.leader(),
                sending_round: self.ticks,
                receiving_round: self.ticks,
                timer_value: 10,
                susp_levels: Vec::new(),
                extra: vec![("ticks", self.ticks)],
            }
        }
    }

    fn build(n: usize, horizon: u64, crashes: CrashPlan) -> Simulation<Beacon, FixedDelay> {
        let procs = (0..n).map(|i| Beacon::new(ProcessId::new(i as u32), n)).collect();
        Simulation::new(
            SimConfig::new(7, Time::from_ticks(horizon)),
            procs,
            FixedDelay::new(Duration::from_ticks(2)),
            crashes,
        )
    }

    #[test]
    fn beacons_agree_on_smallest_id() {
        let mut sim = build(4, 2000, CrashPlan::new());
        let report = sim.run();
        assert!(report.is_stable(), "history: {:?}", report.leader_history);
        assert_eq!(report.stabilization.unwrap().leader, ProcessId::new(0));
        assert!(report.counters.messages_sent > 100);
        assert_eq!(report.counters.crashes, 0);
        assert!(report.final_snapshots.iter().all(|s| s.is_some()));
    }

    #[test]
    fn crash_of_leader_moves_agreement() {
        let plan = CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(500));
        let mut sim = build(4, 3000, plan);
        let report = sim.run();
        assert_eq!(report.crashed, vec![ProcessId::new(0)]);
        assert!(report.is_stable());
        assert_eq!(report.stabilization.unwrap().leader, ProcessId::new(1));
        assert!(report.final_snapshots[0].is_none());
        assert!(report.counters.dropped_to_crashed > 0);
    }

    #[test]
    fn run_until_stable_stops_early() {
        let mut sim = build(3, 1_000_000, CrashPlan::new());
        let report = sim.run_until_stable_for(Duration::from_ticks(200));
        assert!(report.is_stable());
        assert!(report.final_time < Time::from_ticks(10_000));
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = |seed| {
            let procs = (0..5).map(|i| Beacon::new(ProcessId::new(i as u32), 5)).collect();
            let mut sim = Simulation::new(
                SimConfig::new(seed, Time::from_ticks(3000)),
                procs,
                crate::adversary::basic::RandomDelay::new(DelayDist::uniform(
                    Duration::from_ticks(1),
                    Duration::from_ticks(9),
                )),
                CrashPlan::new().crash(ProcessId::new(1), Time::from_ticks(700)),
            );
            let r = sim.run();
            (r.counters, r.leader_history.len(), r.stabilization)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0.messages_delivered, 0);
    }

    #[test]
    fn timer_superseding_prevents_stale_fires() {
        /// A protocol that re-arms the same timer twice in a row; only the
        /// second arming may fire.
        #[derive(Debug)]
        struct Rearm {
            id: ProcessId,
            fires: u64,
        }
        #[derive(Clone, Debug)]
        struct NoMsg;
        impl RoundTagged for NoMsg {
            fn constrained_round(&self) -> Option<RoundNum> {
                None
            }
        }
        impl Protocol for Rearm {
            type Msg = NoMsg;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_start(&mut self, out: &mut Actions<NoMsg>) {
                out.set_timer(TimerId::new(0), Duration::from_ticks(5));
                out.set_timer(TimerId::new(0), Duration::from_ticks(50));
            }
            fn on_message(&mut self, _: ProcessId, _: NoMsg, _: &mut Actions<NoMsg>) {}
            fn on_timer(&mut self, _: TimerId, _: &mut Actions<NoMsg>) {
                self.fires += 1;
            }
        }
        impl LeaderOracle for Rearm {
            fn leader(&self) -> ProcessId {
                ProcessId::new(0)
            }
        }
        impl Introspect for Rearm {
            fn snapshot(&self) -> Snapshot {
                Snapshot::default()
            }
        }
        let procs = vec![Rearm { id: ProcessId::new(0), fires: 0 }, Rearm { id: ProcessId::new(1), fires: 0 }];
        let mut sim = Simulation::new(
            SimConfig::new(1, Time::from_ticks(1000)),
            procs,
            FixedDelay::new(Duration::from_ticks(1)),
            CrashPlan::new(),
        );
        let report = sim.run();
        assert_eq!(sim.process(ProcessId::new(0)).fires, 1);
        assert_eq!(report.counters.timer_fires, 2);
        assert_eq!(report.counters.timers_set, 4);
    }

    #[test]
    #[should_panic(expected = "reports id")]
    fn mismatched_ids_panic() {
        let procs = vec![Beacon::new(ProcessId::new(1), 2), Beacon::new(ProcessId::new(0), 2)];
        let _ = Simulation::new(
            SimConfig::default(),
            procs,
            FixedDelay::new(Duration::from_ticks(1)),
            CrashPlan::new(),
        );
    }
}
