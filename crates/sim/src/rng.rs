//! Deterministic pseudo-random number generation.
//!
//! Every random choice of the simulator (message delays, star point sets,
//! crash jitter, workload values) comes from a [`SimRng`], a small
//! xoshiro256++ generator seeded through SplitMix64. Two runs with the same
//! seed and the same configuration produce byte-identical traces, which is
//! what makes every experiment in `EXPERIMENTS.md` reproducible.
//!
//! The generator deliberately does not depend on the `rand` crate so that the
//! stream can never silently change with a dependency upgrade; the algorithm
//! is written out here and pinned by tests.

use irs_types::{Duration, ProcessId, ProcessSet};

/// SplitMix64, used to expand a single `u64` seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use irs_sim::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_u64(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (cannot happen with SplitMix64 for all
        // four outputs, but be defensive).
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x1;
        }
        SimRng { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forking lets the engine give each concern (delays, star rotation,
    /// crash jitter, workload) its own stream so that adding draws to one
    /// concern does not perturb the others.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        SimRng { s }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Rejection-free multiply-shift; bias is negligible for simulation use
        // (span ≪ 2^64) and determinism is what matters here.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.range_u64(0..bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Samples a duration uniformly from `[min, max]` (inclusive).
    pub fn duration_between(&mut self, min: Duration, max: Duration) -> Duration {
        if max <= min {
            return min;
        }
        Duration::from_ticks(self.range_u64(min.ticks()..max.ticks() + 1))
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Chooses a subset of `k` process ids out of `candidates`, uniformly.
    ///
    /// Returns a set with capacity `n`. If `k` exceeds the number of
    /// candidates, all candidates are returned.
    pub fn choose_subset(&mut self, n: usize, candidates: &[ProcessId], k: usize) -> ProcessSet {
        let mut pool: Vec<ProcessId> = candidates.to_vec();
        self.shuffle(&mut pool);
        ProcessSet::from_ids(n, pool.into_iter().take(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn pinned_first_outputs() {
        // Pin the stream so that dependency-free determinism is verifiable:
        // if this test ever fails the generator changed and every recorded
        // experiment seed is invalidated.
        let mut r = SimRng::from_seed(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SimRng::from_seed(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            let v = r.range_u64(5..15);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::from_seed(0).range_u64(5..5);
    }

    #[test]
    fn range_covers_all_values_eventually() {
        let mut r = SimRng::from_seed(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..2000).filter(|_| r.chance(0.25)).count();
        assert!(hits > 300 && hits < 700, "hits={hits}");
    }

    #[test]
    fn duration_between_inclusive() {
        let mut r = SimRng::from_seed(5);
        let lo = Duration::from_ticks(10);
        let hi = Duration::from_ticks(12);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let d = r.duration_between(lo, hi);
            assert!(d >= lo && d <= hi);
            seen.insert(d.ticks());
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(r.duration_between(hi, lo), hi); // degenerate range
    }

    #[test]
    fn choose_subset_size_and_membership() {
        let mut r = SimRng::from_seed(13);
        let candidates: Vec<ProcessId> = ProcessId::all(10).collect();
        for k in 0..=10 {
            let s = r.choose_subset(10, &candidates, k);
            assert_eq!(s.len(), k);
        }
        let s = r.choose_subset(10, &candidates, 20);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn choose_subset_varies() {
        let mut r = SimRng::from_seed(17);
        let candidates: Vec<ProcessId> = ProcessId::all(12).collect();
        let subsets: std::collections::BTreeSet<Vec<ProcessId>> = (0..50)
            .map(|_| r.choose_subset(12, &candidates, 4).to_vec())
            .collect();
        assert!(subsets.len() > 10);
    }

    #[test]
    fn fork_streams_are_independent_but_deterministic() {
        let base = SimRng::from_seed(21);
        let mut f1 = base.fork(1);
        let mut f1b = base.fork(1);
        let mut f2 = base.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::from_seed(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
