//! Small statistics helpers for experiment reporting.

use core::fmt;

/// Summary statistics over a sample of `u64` measurements (times, rounds,
/// message counts, suspicion levels, …).
///
/// # Example
///
/// ```
/// use irs_sim::Summary;
///
/// let s = Summary::from_samples(&[10, 20, 30, 40, 50]);
/// assert_eq!(s.count, 5);
/// assert_eq!(s.min, 10);
/// assert_eq!(s.max, 50);
/// assert_eq!(s.mean(), 30.0);
/// assert_eq!(s.percentile(50.0), 30);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (zero when empty).
    pub min: u64,
    /// Largest sample (zero when empty).
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
    sorted: Vec<u64>,
}

impl Summary {
    /// Builds a summary from a slice of samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Summary {
            count: sorted.len(),
            min: sorted.first().copied().unwrap_or(0),
            max: sorted.last().copied().unwrap_or(0),
            sum: sorted.iter().sum(),
            sorted,
        }
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation (zero when empty).
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .sorted
            .iter()
            .map(|&x| {
                let d = x as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.count as f64;
        var.sqrt()
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.count as f64 - 1.0)).round() as usize;
        self.sorted[rank.min(self.count - 1)]
    }

    /// The median (50th percentile).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} min={} max={}",
            self.count,
            self.mean(),
            self.median(),
            self.percentile(95.0),
            self.min,
            self.max
        )
    }
}

/// A streaming latency histogram with logarithmic (power-of-two) buckets.
///
/// Where [`Summary`] stores every sample (fine for a few thousand
/// simulation outcomes), a load generator records millions of latencies;
/// this histogram is O(1) per record and O(64) in memory. Bucket `0` holds
/// the value `0`; bucket `b ≥ 1` holds values in `[2^(b−1), 2^b)`, so a
/// percentile read is exact to within a factor of two and, in practice,
/// much closer (the reported value is the geometric midpoint of the
/// bucket, clamped by the observed min/max).
///
/// # Example
///
/// ```
/// use irs_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 50_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 100);
/// assert_eq!(h.max(), 50_000);
/// let p50 = h.percentile(50.0);
/// assert!((128..=512).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one (for per-thread collection).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), approximated as the
    /// geometric midpoint of the bucket holding the `p`-th sample, clamped
    /// into `[min, max]`. Zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank on the cumulative bucket counts; the extreme ranks
        // are tracked exactly.
        let rank = ((p / 100.0) * (self.count as f64 - 1.0)).round() as u64;
        if rank == 0 {
            return self.min;
        }
        if rank == self.count - 1 {
            return self.max;
        }
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                let mid = if b == 0 {
                    0
                } else {
                    // Geometric midpoint of [2^(b−1), 2^b): √2 · 2^(b−1).
                    let lo = 1u64 << (b - 1);
                    (lo as f64 * std::f64::consts::SQRT_2) as u64
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (50th percentile).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} min={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.min(),
            self.max()
        )
    }
}

/// Fraction of `hits` over `total`, rendered as a percentage string.
pub fn percentage(hits: usize, total: usize) -> String {
    if total == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 0);
    }

    #[test]
    fn basic_statistics() {
        let s = Summary::from_samples(&[4, 8, 6, 2]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 8);
        assert_eq!(s.sum, 20);
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.2360679).abs() < 1e-6);
    }

    #[test]
    fn percentiles() {
        let s = Summary::from_samples(&(1..=100u64).collect::<Vec<_>>());
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(50.0), 51); // nearest-rank on 0-based index
        assert_eq!(s.percentile(95.0), 95);
        assert_eq!(s.percentile(200.0), 100); // clamped
    }

    #[test]
    fn display_contains_key_fields() {
        let s = Summary::from_samples(&[1, 2, 3]);
        let d = s.to_string();
        assert!(d.contains("n=3"));
        assert!(d.contains("mean=2.0"));
    }

    #[test]
    fn percentage_formatting() {
        assert_eq!(percentage(3, 4), "75%");
        assert_eq!(percentage(0, 0), "n/a");
        assert_eq!(percentage(5, 5), "100%");
    }

    #[test]
    fn histogram_empty_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(Histogram::default(), Histogram::new());
    }

    #[test]
    fn histogram_tracks_extremes_and_mean_exactly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 201.2);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn histogram_merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [5u64, 80, 3000] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 70_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram changes nothing.
        let before = all.clone();
        all.merge(&Histogram::new());
        assert_eq!(all, before);
    }

    #[test]
    fn histogram_display_reports_key_fields() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let d = h.to_string();
        assert!(d.contains("n=2"), "{d}");
        assert!(d.contains("p99="), "{d}");
    }

    proptest! {
        #[test]
        fn prop_percentile_bounded_by_min_max(samples in proptest::collection::vec(0u64..1_000_000, 1..200), p in 0.0f64..100.0) {
            let s = Summary::from_samples(&samples);
            let v = s.percentile(p);
            prop_assert!(v >= s.min && v <= s.max);
        }

        /// A histogram percentile is within a factor of two of the exact
        /// nearest-rank percentile (the log2-bucket guarantee), and always
        /// inside the observed [min, max].
        #[test]
        fn prop_histogram_percentile_tracks_exact_within_2x(
            samples in proptest::collection::vec(0u64..1_000_000, 1..300),
            p in 0.0f64..100.0,
        ) {
            let mut h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let exact = Summary::from_samples(&samples).percentile(p);
            let approx = h.percentile(p);
            prop_assert!(approx >= h.min() && approx <= h.max());
            if exact > 0 {
                let ratio = approx as f64 / exact as f64;
                prop_assert!((0.5..=2.0).contains(&ratio),
                    "approx {approx} vs exact {exact} (ratio {ratio})");
            }
        }

        #[test]
        fn prop_mean_between_min_and_max(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let s = Summary::from_samples(&samples);
            prop_assert!(s.mean() >= s.min as f64 - 1e-9);
            prop_assert!(s.mean() <= s.max as f64 + 1e-9);
        }
    }
}
