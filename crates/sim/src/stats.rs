//! Small statistics helpers for experiment reporting.
//!
//! The streaming log2-bucket [`Histogram`](crate::Histogram) formerly
//! defined here now lives in `irs-obs` (one histogram for simulation,
//! load-generator and live-scrape percentiles alike); this crate
//! re-exports it, so `irs_sim::Histogram` remains a valid path.

use core::fmt;

/// Summary statistics over a sample of `u64` measurements (times, rounds,
/// message counts, suspicion levels, …).
///
/// # Example
///
/// ```
/// use irs_sim::Summary;
///
/// let s = Summary::from_samples(&[10, 20, 30, 40, 50]);
/// assert_eq!(s.count, 5);
/// assert_eq!(s.min, 10);
/// assert_eq!(s.max, 50);
/// assert_eq!(s.mean(), 30.0);
/// assert_eq!(s.percentile(50.0), 30);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample (zero when empty).
    pub min: u64,
    /// Largest sample (zero when empty).
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
    sorted: Vec<u64>,
}

impl Summary {
    /// Builds a summary from a slice of samples.
    pub fn from_samples(samples: &[u64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Summary {
            count: sorted.len(),
            min: sorted.first().copied().unwrap_or(0),
            max: sorted.last().copied().unwrap_or(0),
            sum: sorted.iter().sum(),
            sorted,
        }
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population standard deviation (zero when empty).
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .sorted
            .iter()
            .map(|&x| {
                let d = x as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.count as f64;
        var.sqrt()
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.count as f64 - 1.0)).round() as usize;
        self.sorted[rank.min(self.count - 1)]
    }

    /// The median (50th percentile).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} min={} max={}",
            self.count,
            self.mean(),
            self.median(),
            self.percentile(95.0),
            self.min,
            self.max
        )
    }
}

/// Fraction of `hits` over `total`, rendered as a percentage string.
pub fn percentage(hits: usize, total: usize) -> String {
    if total == 0 {
        "n/a".to_string()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 0);
    }

    #[test]
    fn basic_statistics() {
        let s = Summary::from_samples(&[4, 8, 6, 2]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 8);
        assert_eq!(s.sum, 20);
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.2360679).abs() < 1e-6);
    }

    #[test]
    fn percentiles() {
        let s = Summary::from_samples(&(1..=100u64).collect::<Vec<_>>());
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(50.0), 51); // nearest-rank on 0-based index
        assert_eq!(s.percentile(95.0), 95);
        assert_eq!(s.percentile(200.0), 100); // clamped
    }

    #[test]
    fn display_contains_key_fields() {
        let s = Summary::from_samples(&[1, 2, 3]);
        let d = s.to_string();
        assert!(d.contains("n=3"));
        assert!(d.contains("mean=2.0"));
    }

    #[test]
    fn percentage_formatting() {
        assert_eq!(percentage(3, 4), "75%");
        assert_eq!(percentage(0, 0), "n/a");
        assert_eq!(percentage(5, 5), "100%");
    }

    proptest! {
        #[test]
        fn prop_percentile_bounded_by_min_max(samples in proptest::collection::vec(0u64..1_000_000, 1..200), p in 0.0f64..100.0) {
            let s = Summary::from_samples(&samples);
            let v = s.percentile(p);
            prop_assert!(v >= s.min && v <= s.max);
        }

        /// A histogram percentile is within a factor of two of the exact
        /// nearest-rank percentile (the log2-bucket guarantee), and always
        /// inside the observed [min, max].
        #[test]
        fn prop_histogram_percentile_tracks_exact_within_2x(
            samples in proptest::collection::vec(0u64..1_000_000, 1..300),
            p in 0.0f64..100.0,
        ) {
            let mut h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let exact = Summary::from_samples(&samples).percentile(p);
            let approx = h.percentile(p);
            prop_assert!(approx >= h.min() && approx <= h.max());
            if exact > 0 {
                let ratio = approx as f64 / exact as f64;
                prop_assert!((0.5..=2.0).contains(&ratio),
                    "approx {approx} vs exact {exact} (ratio {ratio})");
            }
        }

        #[test]
        fn prop_mean_between_min_and_max(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let s = Summary::from_samples(&samples);
            prop_assert!(s.mean() >= s.min as f64 - 1e-9);
            prop_assert!(s.mean() <= s.max as f64 + 1e-9);
        }
    }
}
