//! Adversary (assumption) models.
//!
//! In the paper's system model the network is reliable but entirely under the
//! control of an adversary: message transfer delays are arbitrary unless an
//! additional behavioural assumption constrains them. An [`Adversary`] is that
//! entity made programmable — for every message handed to the network it
//! decides *when* (and, for the winning-message guarantee, *in which order*)
//! the message reaches its destination.
//!
//! The module provides:
//!
//! * [`basic`] — assumption-free models (fixed delay, uniformly random delay,
//!   eventually-synchronous) used as building blocks and for negative
//!   controls;
//! * [`star`] — the general *star adversary* realising the paper's
//!   assumptions `A′`, `A` and `A_{f,g}` as well as every special case they
//!   generalise (eventual t-source, eventual t-moving source, message
//!   pattern, combined);
//! * [`presets`] — named constructors for each published assumption, used by
//!   the experiment harness and the examples.

pub mod basic;
pub mod presets;
pub mod star;

use crate::SimRng;
use irs_types::{Duration, GrowthFn, ProcessId, RoundNum, RoundTagged, Time};

/// How the network should deliver one message, as decided by an adversary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Delivery {
    /// Deliver the message `delay` after it was sent.
    After(Duration),
    /// Deliver the message `delay` after it was sent **and** mark it as the
    /// star-centre message for `(receiver, round)`: its delivery opens the
    /// winning-message gate, releasing any held messages for the same key.
    StarAfter(Duration),
    /// Hold the message until the star-centre message for
    /// `(receiver, round)` has been delivered, then deliver it `slack` later.
    /// If the star message has not arrived `deadline` after the send, deliver
    /// anyway (links are reliable; a missed deadline merely means the winning
    /// property was not enforced for that round).
    AfterStar {
        /// Extra delay applied once the gate opens.
        slack: Duration,
        /// Unconditional delivery deadline, measured from the send time.
        deadline: Duration,
    },
}

/// A message-delay distribution with optional growth over simulated time.
///
/// The delay of each sample is drawn uniformly from
/// `[min, max + growth(now / growth_unit)]` ticks: the growth term widens the
/// *spread* of the distribution as simulated time passes. A non-zero
/// [`GrowthFn`] therefore makes the network not just slower but unboundedly
/// more erratic, which is how the experiments defeat algorithms whose
/// correctness needs a fixed (if unknown) bound on delays — adaptive timeouts
/// can chase a bounded distribution but not one whose tail keeps growing —
/// while leaving order-based (winning message) guarantees intact.
#[derive(Clone, Copy, Debug)]
pub struct DelayDist {
    /// Minimum base delay.
    pub min: Duration,
    /// Maximum base delay (inclusive).
    pub max: Duration,
    /// Additional delay as a function of elapsed simulated time.
    pub growth: GrowthFn,
    /// The unit of elapsed time fed to `growth` (e.g. `1000` ticks).
    pub growth_unit: Duration,
}

impl DelayDist {
    /// A distribution with constant support `[min, max]` and no growth.
    pub fn uniform(min: Duration, max: Duration) -> Self {
        DelayDist {
            min,
            max,
            growth: GrowthFn::Zero,
            growth_unit: Duration::from_ticks(1),
        }
    }

    /// A distribution that always returns `d`.
    pub fn fixed(d: Duration) -> Self {
        Self::uniform(d, d)
    }

    /// Adds growth over simulated time to the distribution.
    pub fn with_growth(mut self, growth: GrowthFn, per: Duration) -> Self {
        self.growth = growth;
        self.growth_unit = if per.is_zero() {
            Duration::from_ticks(1)
        } else {
            per
        };
        self
    }

    /// Samples a delay at simulated time `now`.
    pub fn sample(&self, now: Time, rng: &mut SimRng) -> Duration {
        let upper = self
            .max
            .saturating_add(Duration::from_ticks(self.growth_extra(now)));
        rng.duration_between(self.min, upper)
    }

    /// The largest delay the distribution can currently produce.
    pub fn current_max(&self, now: Time) -> Duration {
        self.max
            .saturating_add(Duration::from_ticks(self.growth_extra(now)))
    }

    fn growth_extra(&self, now: Time) -> u64 {
        if self.growth.is_zero() {
            0
        } else {
            self.growth
                .eval(RoundNum::new(now.ticks() / self.growth_unit.ticks().max(1)))
        }
    }
}

/// The entity that controls message transfer delays.
///
/// The network itself is reliable (no loss, no corruption, no duplication);
/// the adversary only chooses delays and — through the gate mechanism of
/// [`Delivery::AfterStar`] — relative delivery order of `ALIVE` messages of
/// the same round at the same receiver.
pub trait Adversary<M: RoundTagged>: Send {
    /// Decides how to deliver one message.
    ///
    /// `now` is the send time. Self-addressed messages also pass through the
    /// adversary; the assumptions never constrain them, so models typically
    /// treat them like any other unconstrained message.
    fn delivery(
        &mut self,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SimRng,
    ) -> Delivery;

    /// A short human-readable description, used in experiment tables.
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_dist_uniform_bounds() {
        let d = DelayDist::uniform(Duration::from_ticks(3), Duration::from_ticks(9));
        let mut rng = SimRng::from_seed(1);
        for _ in 0..500 {
            let s = d.sample(Time::ZERO, &mut rng);
            assert!(s >= Duration::from_ticks(3) && s <= Duration::from_ticks(9));
        }
        assert_eq!(d.current_max(Time::ZERO), Duration::from_ticks(9));
    }

    #[test]
    fn delay_dist_fixed() {
        let d = DelayDist::fixed(Duration::from_ticks(5));
        let mut rng = SimRng::from_seed(2);
        assert_eq!(
            d.sample(Time::from_ticks(123), &mut rng),
            Duration::from_ticks(5)
        );
    }

    #[test]
    fn delay_dist_growth_widens_the_spread_over_time() {
        let d = DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(2)).with_growth(
            GrowthFn::Linear {
                per_round: 10,
                divisor: 1,
            },
            Duration::from_ticks(100),
        );
        let mut rng = SimRng::from_seed(3);
        // Early on, samples stay within the base range.
        for _ in 0..100 {
            assert!(d.sample(Time::from_ticks(0), &mut rng) <= Duration::from_ticks(2));
        }
        // Much later the support is [1, 2 + 1000]: the tail is reachable…
        let late: Vec<Duration> = (0..200)
            .map(|_| d.sample(Time::from_ticks(10_000), &mut rng))
            .collect();
        assert!(late.iter().any(|&x| x > Duration::from_ticks(500)));
        // …and the spread, not just the shift, has grown (small delays remain possible).
        assert!(late.iter().any(|&x| x < Duration::from_ticks(100)));
        assert!(d.current_max(Time::from_ticks(10_000)) >= Duration::from_ticks(1000));
    }

    #[test]
    fn growth_unit_zero_is_sanitised() {
        let d = DelayDist::uniform(Duration::from_ticks(5), Duration::from_ticks(5))
            .with_growth(GrowthFn::Constant(4), Duration::ZERO);
        let mut rng = SimRng::from_seed(4);
        let s = d.sample(Time::from_ticks(50), &mut rng);
        assert!(s >= Duration::from_ticks(5) && s <= Duration::from_ticks(9));
    }
}
