//! The star adversary: a programmable realisation of the paper's assumptions.
//!
//! A [`StarAdversary`] guarantees that one distinguished process — the *star
//! centre* — satisfies, for a configurable subset of the rounds, the
//! properties A1/A2 of the paper: for every *active* round `rn` there is a
//! set `Q(rn)` of `t` points such that the centre's `ALIVE(rn)` message to
//! each point is either `Δ`-timely or winning. Everything else (messages of
//! other senders, `SUSPICION` messages, inactive rounds, non-point receivers)
//! is delayed according to an arbitrary, possibly unboundedly growing,
//! background distribution.
//!
//! By choosing [`Rotation`], [`PointGuarantee`] and [`Activation`] the same
//! type realises the whole assumption lattice discussed in Sections 1.2 and 3
//! of the paper:
//!
//! | assumption | rotation | guarantee | activation |
//! |---|---|---|---|
//! | eventual t-source (PODC'04) | `Fixed` | `Timely` | `EveryRound` |
//! | message pattern (DSN'03) | `Fixed` | `Winning` | `EveryRound` |
//! | combined (TPDS'06) | `Fixed` | `Mixed` | `EveryRound` |
//! | eventual t-moving source | `PerRound` | `Timely` | `EveryRound` |
//! | moving message pattern | `PerRound` | `Winning` | `EveryRound` |
//! | eventual rotating t-star (`A′`) | `PerRound` | `Mixed` | `EveryRound` |
//! | intermittent rotating t-star (`A`) | `PerRound` | `Mixed` | `RandomGap`/`Periodic` |
//! | `A_{f,g}` (§7) | `PerRound` | `Mixed` | `GrowingGap` + `g ≠ 0` |

use super::{Adversary, DelayDist, Delivery};
use crate::SimRng;
use irs_types::{
    Duration, GrowthFn, ProcessId, ProcessSet, RoundNum, RoundTagged, SystemConfig, Time,
};
use std::collections::BTreeSet;

/// Whether the point set `Q(rn)` may change from round to round.
#[derive(Clone, Debug)]
pub enum Rotation {
    /// The same point set is used for every active round (the "source"-style
    /// assumptions).
    Fixed(ProcessSet),
    /// A fresh pseudo-random point set of size `t` is drawn for every active
    /// round (the "moving"/"rotating" assumptions).
    PerRound,
}

/// Which of the two properties of A2 the star points receive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PointGuarantee {
    /// Property (2): the centre's `ALIVE(rn)` is `Δ`-timely.
    Timely,
    /// Property (3): the centre's `ALIVE(rn)` is winning (among the first
    /// `n − t` `ALIVE(rn)` messages the point receives).
    Winning,
    /// Each point of each round independently gets (2) or (3) — the general
    /// case the paper emphasises ("two points of the star are allowed to
    /// satisfy different properties").
    Mixed,
}

/// Which rounds are *active*, i.e. belong to the sequence `S` on which the
/// star guarantee holds.
#[derive(Clone, Copy, Debug)]
pub enum Activation {
    /// Every round from `start_round` on is active — assumption `A′`.
    EveryRound,
    /// Rounds `start_round, start_round + gap, start_round + 2·gap, …` —
    /// assumption `A` with `D = gap`.
    Periodic {
        /// The constant gap between consecutive active rounds.
        gap: u64,
    },
    /// Pseudo-random gaps drawn uniformly from `[1, max_gap]` — assumption
    /// `A` with `D = max_gap`.
    RandomGap {
        /// The bound `D` on the gap between consecutive active rounds.
        max_gap: u64,
    },
    /// Pseudo-random gaps drawn from `[1, base + f(s_k)]` — assumption
    /// `A_{f,g}` (the gap bound grows with the round number).
    GrowingGap {
        /// The base gap bound `D`.
        base: u64,
        /// The growth function `f`.
        f: GrowthFn,
    },
}

/// Full configuration of a [`StarAdversary`].
#[derive(Clone, Debug)]
pub struct StarConfig {
    /// The system parameters `(n, t)`.
    pub system: SystemConfig,
    /// The star centre — the process the assumption promises to be correct.
    pub center: ProcessId,
    /// Point-set behaviour.
    pub rotation: Rotation,
    /// Guarantee given to the points.
    pub guarantee: PointGuarantee,
    /// Which rounds are active.
    pub activation: Activation,
    /// The first round (`RN₀`) from which the guarantee holds; earlier rounds
    /// are entirely unconstrained.
    pub start_round: u64,
    /// The timeliness bound `Δ` for timely points.
    pub delta: Duration,
    /// The extra timeliness slack `g(rn)` of `A_{f,g}` (zero recovers `A`).
    pub g: GrowthFn,
    /// Delay distribution for every unconstrained message.
    pub unconstrained: DelayDist,
    /// Extra delay applied to held messages once the winning gate opens.
    pub winning_slack: Duration,
}

impl StarConfig {
    /// A reasonable default configuration for assumption `A′` around the
    /// given centre: per-round rotation, mixed guarantees, active from round
    /// 1, `Δ = 8` ticks, background delays in `[1, 60]` ticks.
    pub fn a_prime(system: SystemConfig, center: ProcessId) -> Self {
        StarConfig {
            system,
            center,
            rotation: Rotation::PerRound,
            guarantee: PointGuarantee::Mixed,
            activation: Activation::EveryRound,
            start_round: 1,
            delta: Duration::from_ticks(8),
            g: GrowthFn::Zero,
            unconstrained: DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(60)),
            winning_slack: Duration::from_ticks(2),
        }
    }
}

/// See the [module documentation](self).
#[derive(Clone, Debug)]
pub struct StarAdversary {
    cfg: StarConfig,
    seed: u64,
    /// Memoised active rounds for the gap-based activations.
    active: BTreeSet<u64>,
    /// Highest active round generated so far.
    generated_up_to: u64,
    /// Memoised point set of the round most recently asked about. `points`
    /// is deterministic in `(seed, rn)` and the engine asks once per
    /// constrained message — all `n²` sends of a round share one instant —
    /// so a single-round cache removes the per-message subset shuffle from
    /// the hot path.
    points_cache: Option<(RoundNum, ProcessSet)>,
    /// Memoised activation verdict of the round most recently asked about.
    active_cache: Option<(RoundNum, bool)>,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    mix(seed ^ mix(a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ mix(b)))
}

impl StarAdversary {
    /// Creates a star adversary with the given configuration and seed.
    ///
    /// The seed drives only the adversary's own pseudo-random choices (point
    /// sets, per-point guarantee flips, activation gaps); background delays
    /// are sampled from the engine's RNG.
    pub fn new(cfg: StarConfig, seed: u64) -> Self {
        let start = cfg.start_round.max(1);
        StarAdversary {
            cfg,
            seed,
            active: BTreeSet::from([start]),
            generated_up_to: start,
            points_cache: None,
            active_cache: None,
        }
    }

    /// The configured star centre.
    pub fn center(&self) -> ProcessId {
        self.cfg.center
    }

    /// The configuration.
    pub fn config(&self) -> &StarConfig {
        &self.cfg
    }

    /// Returns the point set `Q(rn)` that the adversary enforces in round
    /// `rn`. Deterministic in `(seed, rn)`.
    pub fn points(&self, rn: RoundNum) -> ProcessSet {
        match &self.cfg.rotation {
            Rotation::Fixed(set) => set.clone(),
            Rotation::PerRound => {
                let n = self.cfg.system.n();
                let candidates: Vec<ProcessId> = self
                    .cfg
                    .system
                    .processes()
                    .filter(|p| *p != self.cfg.center)
                    .collect();
                let mut rng = SimRng::from_seed(hash3(self.seed, rn.value(), 0xA11CE));
                rng.choose_subset(n, &candidates, self.cfg.system.t())
            }
        }
    }

    /// Returns the guarantee enforced for point `q` in round `rn`.
    pub fn point_guarantee(&self, rn: RoundNum, q: ProcessId) -> PointGuarantee {
        match self.cfg.guarantee {
            PointGuarantee::Timely => PointGuarantee::Timely,
            PointGuarantee::Winning => PointGuarantee::Winning,
            PointGuarantee::Mixed => {
                if hash3(self.seed, rn.value(), 0xB0B0 ^ u64::from(q.as_u32())) & 1 == 0 {
                    PointGuarantee::Timely
                } else {
                    PointGuarantee::Winning
                }
            }
        }
    }

    /// Returns `true` if round `rn` belongs to the active sequence `S`.
    pub fn is_active(&mut self, rn: RoundNum) -> bool {
        if let Some((cached_rn, active)) = self.active_cache {
            if cached_rn == rn {
                return active;
            }
        }
        let active = self.compute_active(rn);
        self.active_cache = Some((rn, active));
        active
    }

    fn compute_active(&mut self, rn: RoundNum) -> bool {
        let r = rn.value();
        if r < self.cfg.start_round.max(1) {
            return false;
        }
        match self.cfg.activation {
            Activation::EveryRound => true,
            Activation::Periodic { gap } => {
                (r - self.cfg.start_round.max(1)).is_multiple_of(gap.max(1))
            }
            Activation::RandomGap { .. } | Activation::GrowingGap { .. } => {
                self.extend_active_to(r);
                self.active.contains(&r)
            }
        }
    }

    /// The largest gap between consecutive active rounds generated so far
    /// (useful to check the `D` bound in tests).
    pub fn max_generated_gap(&self) -> u64 {
        self.active
            .iter()
            .zip(self.active.iter().skip(1))
            .map(|(a, b)| b - a)
            .max()
            .unwrap_or(0)
    }

    fn extend_active_to(&mut self, round: u64) {
        let mut k = self.active.len() as u64;
        while self.generated_up_to < round {
            let current = self.generated_up_to;
            let max_gap = match self.cfg.activation {
                Activation::RandomGap { max_gap } => max_gap.max(1),
                Activation::GrowingGap { base, f } => {
                    base.max(1).saturating_add(f.eval(RoundNum::new(current)))
                }
                _ => 1,
            };
            let gap = 1 + hash3(self.seed, k, 0x5EED) % max_gap;
            let next = current + gap;
            self.active.insert(next);
            self.generated_up_to = next;
            k += 1;
        }
    }

    /// Returns `true` if `q` is a point of `Q(rn)`, via the per-round memo.
    fn is_point(&mut self, rn: RoundNum, q: ProcessId) -> bool {
        match &self.points_cache {
            Some((cached_rn, set)) if *cached_rn == rn => set.contains(q),
            _ => {
                let set = self.points(rn);
                let hit = set.contains(q);
                self.points_cache = Some((rn, set));
                hit
            }
        }
    }

    /// The effective timeliness bound for round `rn`: `Δ + g(rn)`.
    fn effective_delta(&self, rn: RoundNum) -> Duration {
        self.cfg
            .delta
            .saturating_add(Duration::from_ticks(self.cfg.g.eval(rn)))
    }
}

impl<M: RoundTagged> Adversary<M> for StarAdversary {
    fn delivery(
        &mut self,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SimRng,
    ) -> Delivery {
        let Some(rn) = msg.constrained_round() else {
            return Delivery::After(self.cfg.unconstrained.sample(now, rng));
        };
        if !self.is_active(rn) {
            return Delivery::After(self.cfg.unconstrained.sample(now, rng));
        }
        if !self.is_point(rn, to) {
            return Delivery::After(self.cfg.unconstrained.sample(now, rng));
        }
        let mode = self.point_guarantee(rn, to);
        if from == self.cfg.center {
            match mode {
                PointGuarantee::Timely => {
                    let d = rng.duration_between(Duration::from_ticks(1), self.effective_delta(rn));
                    Delivery::After(d)
                }
                // For a winning point the centre's message is constrained in
                // order, not in time: sample from the background distribution
                // but mark it as the gate opener.
                PointGuarantee::Winning | PointGuarantee::Mixed => {
                    Delivery::StarAfter(self.cfg.unconstrained.sample(now, rng))
                }
            }
        } else if mode == PointGuarantee::Winning {
            // Another sender's ALIVE(rn) to a winning point: hold it behind
            // the centre's message so the centre's is received first (hence
            // within the first n − t). The deadline keeps links reliable even
            // if the centre is (mis)configured as crashed.
            let deadline = self
                .cfg
                .unconstrained
                .current_max(now)
                .saturating_mul(4)
                .saturating_add(self.effective_delta(rn).saturating_mul(4))
                .saturating_add(Duration::from_ticks(64));
            Delivery::AfterStar {
                slack: rng.duration_between(
                    Duration::from_ticks(1),
                    self.cfg.winning_slack.max(Duration::from_ticks(1)),
                ),
                deadline,
            }
        } else {
            Delivery::After(self.cfg.unconstrained.sample(now, rng))
        }
    }

    fn describe(&self) -> String {
        let rotation = match &self.cfg.rotation {
            Rotation::Fixed(_) => "fixed",
            Rotation::PerRound => "rotating",
        };
        let guarantee = match self.cfg.guarantee {
            PointGuarantee::Timely => "timely",
            PointGuarantee::Winning => "winning",
            PointGuarantee::Mixed => "mixed",
        };
        let activation = match self.cfg.activation {
            Activation::EveryRound => "every-round".to_string(),
            Activation::Periodic { gap } => format!("periodic(D={gap})"),
            Activation::RandomGap { max_gap } => format!("intermittent(D={max_gap})"),
            Activation::GrowingGap { base, f } => format!("growing(D={base}+{f})"),
        };
        format!(
            "star(center={}, {rotation}, {guarantee}, {activation}, delta={}, g={})",
            self.cfg.center, self.cfg.delta, self.cfg.g
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct TestMsg(Option<RoundNum>);
    impl RoundTagged for TestMsg {
        fn constrained_round(&self) -> Option<RoundNum> {
            self.0
        }
    }

    fn system() -> SystemConfig {
        SystemConfig::new(7, 3).unwrap()
    }

    fn base_cfg(guarantee: PointGuarantee, activation: Activation) -> StarConfig {
        StarConfig {
            guarantee,
            activation,
            ..StarConfig::a_prime(system(), ProcessId::new(0))
        }
    }

    #[test]
    fn points_have_size_t_and_exclude_center() {
        let adv = StarAdversary::new(base_cfg(PointGuarantee::Mixed, Activation::EveryRound), 1);
        for rn in 1..200u64 {
            let pts = adv.points(RoundNum::new(rn));
            assert_eq!(pts.len(), system().t());
            assert!(!pts.contains(ProcessId::new(0)));
        }
    }

    #[test]
    fn points_rotate_across_rounds() {
        let adv = StarAdversary::new(base_cfg(PointGuarantee::Mixed, Activation::EveryRound), 2);
        let distinct: std::collections::BTreeSet<Vec<ProcessId>> = (1..100u64)
            .map(|rn| adv.points(RoundNum::new(rn)).to_vec())
            .collect();
        assert!(
            distinct.len() > 5,
            "point sets should rotate, got {}",
            distinct.len()
        );
    }

    #[test]
    fn fixed_rotation_never_changes() {
        let fixed =
            ProcessSet::from_ids(7, [ProcessId::new(2), ProcessId::new(4), ProcessId::new(5)]);
        let cfg = StarConfig {
            rotation: Rotation::Fixed(fixed.clone()),
            ..base_cfg(PointGuarantee::Timely, Activation::EveryRound)
        };
        let adv = StarAdversary::new(cfg, 3);
        for rn in 1..50u64 {
            assert_eq!(adv.points(RoundNum::new(rn)), fixed);
        }
    }

    #[test]
    fn point_guarantee_is_deterministic_and_mixed() {
        let adv = StarAdversary::new(base_cfg(PointGuarantee::Mixed, Activation::EveryRound), 4);
        let mut timely = 0;
        let mut winning = 0;
        for rn in 1..200u64 {
            for q in system().processes() {
                let a = adv.point_guarantee(RoundNum::new(rn), q);
                let b = adv.point_guarantee(RoundNum::new(rn), q);
                assert_eq!(a, b);
                match a {
                    PointGuarantee::Timely => timely += 1,
                    PointGuarantee::Winning => winning += 1,
                    PointGuarantee::Mixed => unreachable!(),
                }
            }
        }
        assert!(timely > 100 && winning > 100);
    }

    #[test]
    fn every_round_activation() {
        let mut adv =
            StarAdversary::new(base_cfg(PointGuarantee::Mixed, Activation::EveryRound), 5);
        assert!(!adv.is_active(RoundNum::ZERO));
        for rn in 1..100u64 {
            assert!(adv.is_active(RoundNum::new(rn)));
        }
    }

    #[test]
    fn start_round_is_respected() {
        let cfg = StarConfig {
            start_round: 50,
            ..base_cfg(PointGuarantee::Mixed, Activation::EveryRound)
        };
        let mut adv = StarAdversary::new(cfg, 6);
        assert!(!adv.is_active(RoundNum::new(49)));
        assert!(adv.is_active(RoundNum::new(50)));
    }

    #[test]
    fn periodic_activation_has_exact_gap() {
        let mut adv = StarAdversary::new(
            base_cfg(PointGuarantee::Mixed, Activation::Periodic { gap: 4 }),
            7,
        );
        let actives: Vec<u64> = (1..40u64)
            .filter(|&rn| adv.is_active(RoundNum::new(rn)))
            .collect();
        assert_eq!(actives, vec![1, 5, 9, 13, 17, 21, 25, 29, 33, 37]);
    }

    #[test]
    fn random_gap_activation_respects_bound_d() {
        let mut adv = StarAdversary::new(
            base_cfg(PointGuarantee::Mixed, Activation::RandomGap { max_gap: 6 }),
            8,
        );
        let actives: Vec<u64> = (1..2000u64)
            .filter(|&rn| adv.is_active(RoundNum::new(rn)))
            .collect();
        assert!(actives.len() > 300);
        for w in actives.windows(2) {
            assert!(
                w[1] - w[0] >= 1 && w[1] - w[0] <= 6,
                "gap {} out of bounds",
                w[1] - w[0]
            );
        }
        assert!(adv.max_generated_gap() <= 6);
    }

    #[test]
    fn growing_gap_activation_gaps_grow_but_respect_base_plus_f() {
        let f = GrowthFn::Linear {
            per_round: 1,
            divisor: 100,
        };
        let mut adv = StarAdversary::new(
            base_cfg(PointGuarantee::Mixed, Activation::GrowingGap { base: 3, f }),
            9,
        );
        let actives: Vec<u64> = (1..3000u64)
            .filter(|&rn| adv.is_active(RoundNum::new(rn)))
            .collect();
        for w in actives.windows(2) {
            let bound = 3 + f.eval(RoundNum::new(w[0]));
            assert!(
                w[1] - w[0] <= bound,
                "gap {} exceeds D + f = {}",
                w[1] - w[0],
                bound
            );
        }
    }

    #[test]
    fn center_to_timely_point_is_delta_timely() {
        let cfg = base_cfg(PointGuarantee::Timely, Activation::EveryRound);
        let delta = cfg.delta;
        let mut adv = StarAdversary::new(cfg, 10);
        let mut rng = SimRng::from_seed(0);
        for rn in 1..100u64 {
            let pts = adv.points(RoundNum::new(rn));
            for q in pts.iter() {
                match adv.delivery(
                    Time::from_ticks(rn * 10),
                    ProcessId::new(0),
                    q,
                    &TestMsg(Some(RoundNum::new(rn))),
                    &mut rng,
                ) {
                    Delivery::After(d) => assert!(d <= delta, "delay {d} exceeds delta {delta}"),
                    other => panic!("expected After, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn center_to_winning_point_is_marked_star_and_others_held() {
        let mut adv = StarAdversary::new(
            base_cfg(PointGuarantee::Winning, Activation::EveryRound),
            11,
        );
        let mut rng = SimRng::from_seed(1);
        let rn = RoundNum::new(5);
        let q = adv.points(rn).iter().next().unwrap();
        let center_delivery = adv.delivery(
            Time::ZERO,
            ProcessId::new(0),
            q,
            &TestMsg(Some(rn)),
            &mut rng,
        );
        assert!(matches!(center_delivery, Delivery::StarAfter(_)));
        let other = ProcessId::new(6);
        assert_ne!(other, q);
        let other_delivery = adv.delivery(Time::ZERO, other, q, &TestMsg(Some(rn)), &mut rng);
        assert!(matches!(other_delivery, Delivery::AfterStar { .. }));
    }

    #[test]
    fn unconstrained_messages_are_unconstrained() {
        let mut adv =
            StarAdversary::new(base_cfg(PointGuarantee::Timely, Activation::EveryRound), 12);
        let mut rng = SimRng::from_seed(2);
        // A non-ALIVE message from the centre to a point: no guarantee applies.
        let q = adv.points(RoundNum::new(1)).iter().next().unwrap();
        match adv.delivery(Time::ZERO, ProcessId::new(0), q, &TestMsg(None), &mut rng) {
            Delivery::After(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        // An ALIVE message from a non-centre process to a non-point process.
        match adv.delivery(
            Time::ZERO,
            ProcessId::new(3),
            ProcessId::new(0),
            &TestMsg(Some(RoundNum::new(1))),
            &mut rng,
        ) {
            Delivery::After(_) | Delivery::AfterStar { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inactive_rounds_give_no_guarantee() {
        let cfg = base_cfg(PointGuarantee::Timely, Activation::Periodic { gap: 10 });
        let delta = cfg.delta;
        let mut adv = StarAdversary::new(cfg, 13);
        let mut rng = SimRng::from_seed(3);
        // Round 2 is inactive (active rounds are 1, 11, 21, …): delays may
        // exceed delta.
        let rn = RoundNum::new(2);
        assert!(!adv.is_active(rn));
        let q = adv.points(rn).iter().next().unwrap();
        let mut saw_large = false;
        for _ in 0..200 {
            if let Delivery::After(d) = adv.delivery(
                Time::ZERO,
                ProcessId::new(0),
                q,
                &TestMsg(Some(rn)),
                &mut rng,
            ) {
                if d > delta {
                    saw_large = true;
                }
            }
        }
        assert!(saw_large, "inactive round should allow delays above delta");
    }

    #[test]
    fn describe_mentions_key_parameters() {
        let adv = StarAdversary::new(
            base_cfg(PointGuarantee::Mixed, Activation::RandomGap { max_gap: 5 }),
            14,
        );
        let d = Adversary::<TestMsg>::describe(&adv);
        assert!(d.contains("center=p1"));
        assert!(d.contains("intermittent(D=5)"));
    }
}
