//! Named constructors for the published assumptions the paper generalises.
//!
//! Each function returns a [`StarAdversary`] configured to realise exactly one
//! of the assumptions discussed in Sections 1.2 and 3 of the paper. The
//! experiment harness uses these for the "assumption matrix" experiment (E6),
//! and the examples use them to show how each assumption is expressed.

use super::star::{Activation, PointGuarantee, Rotation, StarAdversary, StarConfig};
use super::DelayDist;
use irs_types::{Duration, GrowthFn, ProcessId, ProcessSet, SystemConfig};

/// The first `t` processes other than `center`, used as the fixed point set
/// of the non-moving ("source"-style) assumptions.
pub fn default_fixed_points(system: SystemConfig, center: ProcessId) -> ProcessSet {
    ProcessSet::from_ids(
        system.n(),
        system.processes().filter(|p| *p != center).take(system.t()),
    )
}

fn base(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    unconstrained: DelayDist,
) -> StarConfig {
    StarConfig {
        delta,
        unconstrained,
        ..StarConfig::a_prime(system, center)
    }
}

/// *Eventual t-source* (Aguilera et al., PODC 2004): a fixed set of `t`
/// outgoing links of `center` is eventually `Δ`-timely.
pub fn eventual_t_source(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::Fixed(default_fixed_points(system, center)),
        guarantee: PointGuarantee::Timely,
        activation: Activation::EveryRound,
        ..base(system, center, delta, unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

/// *Eventual t-moving source* (Hutle–Malkhi–Schmid–Zhou): as above but the
/// set of timely links may change every round.
pub fn eventual_t_moving_source(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::PerRound,
        guarantee: PointGuarantee::Timely,
        activation: Activation::EveryRound,
        ..base(system, center, delta, unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

/// *Message pattern* (Mostéfaoui–Mourgaya–Raynal, DSN 2003): a fixed set of
/// `t` processes always receives `center`'s `ALIVE` among the first `n − t`
/// such messages of the round; no timing guarantee at all.
pub fn message_pattern(
    system: SystemConfig,
    center: ProcessId,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::Fixed(default_fixed_points(system, center)),
        guarantee: PointGuarantee::Winning,
        activation: Activation::EveryRound,
        ..base(system, center, Duration::from_ticks(1), unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

/// The *combined* assumption (Mostéfaoui–Raynal–Travers, TPDS 2006): a fixed
/// set of `t` processes, each link independently timely or winning.
pub fn combined_fixed(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::Fixed(default_fixed_points(system, center)),
        guarantee: PointGuarantee::Mixed,
        activation: Activation::EveryRound,
        ..base(system, center, delta, unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

/// The paper's assumption `A′`: an *eventual rotating t-star* — per-round
/// point sets, each point timely or winning, every round active.
pub fn rotating_star_a_prime(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::PerRound,
        guarantee: PointGuarantee::Mixed,
        activation: Activation::EveryRound,
        ..base(system, center, delta, unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

/// The paper's assumption `A`: an *eventual intermittent rotating t-star* —
/// the star only materialises on a sub-sequence of rounds whose consecutive
/// gaps are bounded by `d`.
pub fn intermittent_rotating_star(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    d: u64,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::PerRound,
        guarantee: PointGuarantee::Mixed,
        activation: Activation::RandomGap { max_gap: d.max(1) },
        ..base(system, center, delta, unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

/// The `A_{f,g}` assumption of Section 7: gaps bounded by `D + f(s_k)` and
/// timeliness bound `Δ + g(rn)`, both possibly growing without bound.
#[allow(clippy::too_many_arguments)]
pub fn fg_rotating_star(
    system: SystemConfig,
    center: ProcessId,
    delta: Duration,
    d: u64,
    f: GrowthFn,
    g: GrowthFn,
    unconstrained: DelayDist,
    seed: u64,
) -> StarAdversary {
    let cfg = StarConfig {
        rotation: Rotation::PerRound,
        guarantee: PointGuarantee::Mixed,
        activation: Activation::GrowingGap { base: d.max(1), f },
        g,
        ..base(system, center, delta, unconstrained)
    };
    StarAdversary::new(cfg, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Adversary;
    use irs_types::{RoundNum, RoundTagged};

    #[derive(Clone, Debug)]
    struct TestMsg(Option<RoundNum>);
    impl RoundTagged for TestMsg {
        fn constrained_round(&self) -> Option<RoundNum> {
            self.0
        }
    }

    fn system() -> SystemConfig {
        SystemConfig::new(6, 2).unwrap()
    }

    fn dist() -> DelayDist {
        DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(40))
    }

    #[test]
    fn default_fixed_points_excludes_center_and_has_size_t() {
        let pts = default_fixed_points(system(), ProcessId::new(2));
        assert_eq!(pts.len(), 2);
        assert!(!pts.contains(ProcessId::new(2)));
    }

    #[test]
    fn t_source_points_are_fixed_across_rounds() {
        let adv = eventual_t_source(
            system(),
            ProcessId::new(1),
            Duration::from_ticks(5),
            dist(),
            7,
        );
        let p1 = adv.points(RoundNum::new(1));
        let p99 = adv.points(RoundNum::new(99));
        assert_eq!(p1, p99);
    }

    #[test]
    fn moving_source_points_rotate() {
        let adv = eventual_t_moving_source(
            system(),
            ProcessId::new(1),
            Duration::from_ticks(5),
            dist(),
            7,
        );
        let sets: std::collections::BTreeSet<Vec<ProcessId>> = (1..60u64)
            .map(|rn| adv.points(RoundNum::new(rn)).to_vec())
            .collect();
        assert!(sets.len() > 3);
    }

    #[test]
    fn every_preset_builds_and_describes_itself() {
        let s = system();
        let c = ProcessId::new(0);
        let d = Duration::from_ticks(6);
        let advs: Vec<StarAdversary> = vec![
            eventual_t_source(s, c, d, dist(), 1),
            eventual_t_moving_source(s, c, d, dist(), 1),
            message_pattern(s, c, dist(), 1),
            combined_fixed(s, c, d, dist(), 1),
            rotating_star_a_prime(s, c, d, dist(), 1),
            intermittent_rotating_star(s, c, d, 4, dist(), 1),
            fg_rotating_star(s, c, d, 4, GrowthFn::Sqrt, GrowthFn::Log2, dist(), 1),
        ];
        for adv in &advs {
            let desc = Adversary::<TestMsg>::describe(adv);
            assert!(desc.contains("center=p1"), "{desc}");
        }
    }

    #[test]
    fn intermittent_star_is_sometimes_inactive() {
        let mut adv = intermittent_rotating_star(
            system(),
            ProcessId::new(0),
            Duration::from_ticks(5),
            5,
            dist(),
            11,
        );
        let active = (1..500u64)
            .filter(|&rn| adv.is_active(RoundNum::new(rn)))
            .count();
        assert!(active > 90, "active rounds: {active}");
        assert!(
            active < 450,
            "star should be intermittent, active rounds: {active}"
        );
    }
}
