//! Assumption-free adversary models.
//!
//! These models make no promise that suffices to implement Ω (except
//! [`EventuallySynchronous`], which is far stronger than the paper's
//! assumption). They serve as building blocks, negative controls, and as the
//! "chaotic background" against which the star adversary's guarantees stand
//! out.

use super::{Adversary, DelayDist, Delivery};
use crate::SimRng;
use irs_types::{Duration, ProcessId, RoundTagged, Time};

/// Delivers every message after exactly the same delay.
///
/// This is a *synchronous* network in disguise and therefore trivially
/// satisfies every assumption of the paper; it is useful for smoke tests
/// where the interesting part is the algorithm, not the adversary.
#[derive(Clone, Copy, Debug)]
pub struct FixedDelay {
    delay: Duration,
}

impl FixedDelay {
    /// Creates a fixed-delay network.
    pub fn new(delay: Duration) -> Self {
        FixedDelay { delay }
    }
}

impl<M: RoundTagged> Adversary<M> for FixedDelay {
    fn delivery(
        &mut self,
        _now: Time,
        _from: ProcessId,
        _to: ProcessId,
        _msg: &M,
        _rng: &mut SimRng,
    ) -> Delivery {
        Delivery::After(self.delay)
    }

    fn describe(&self) -> String {
        format!("fixed-delay({})", self.delay)
    }
}

/// Samples every message delay independently from a [`DelayDist`].
///
/// With a growing distribution this is the canonical *purely asynchronous*
/// adversary: no bound on delays holds, even eventually, so no algorithm can
/// implement Ω against it (the experiments use it as a negative control).
#[derive(Clone, Copy, Debug)]
pub struct RandomDelay {
    dist: DelayDist,
}

impl RandomDelay {
    /// Creates a random-delay network.
    pub fn new(dist: DelayDist) -> Self {
        RandomDelay { dist }
    }
}

impl<M: RoundTagged> Adversary<M> for RandomDelay {
    fn delivery(
        &mut self,
        now: Time,
        _from: ProcessId,
        _to: ProcessId,
        _msg: &M,
        rng: &mut SimRng,
    ) -> Delivery {
        Delivery::After(self.dist.sample(now, rng))
    }

    fn describe(&self) -> String {
        format!("random-delay[{}..{}]", self.dist.min, self.dist.max)
    }
}

/// Chaotic delays before a global stabilisation time (GST), then every link
/// is `Δ`-timely.
///
/// This is the classic partially-synchronous model of Dwork–Lynch–Stockmeyer
/// used by the earliest Ω implementations ("all links eventually timely").
/// It is *much* stronger than the intermittent rotating t-star: all `n²`
/// links become timely instead of `t` per (intermittent) round.
#[derive(Clone, Copy, Debug)]
pub struct EventuallySynchronous {
    /// The global stabilisation time.
    pub gst: Time,
    /// The bound that holds after GST.
    pub delta: Duration,
    /// Behaviour before GST.
    pub before: DelayDist,
}

impl EventuallySynchronous {
    /// Creates an eventually-synchronous network.
    pub fn new(gst: Time, delta: Duration, before: DelayDist) -> Self {
        EventuallySynchronous { gst, delta, before }
    }
}

impl<M: RoundTagged> Adversary<M> for EventuallySynchronous {
    fn delivery(
        &mut self,
        now: Time,
        _from: ProcessId,
        _to: ProcessId,
        _msg: &M,
        rng: &mut SimRng,
    ) -> Delivery {
        if now >= self.gst {
            let d = rng.duration_between(Duration::from_ticks(1), self.delta);
            Delivery::After(d)
        } else {
            Delivery::After(self.before.sample(now, rng))
        }
    }

    fn describe(&self) -> String {
        format!(
            "eventually-synchronous(gst={}, delta={})",
            self.gst, self.delta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_types::{GrowthFn, RoundNum};

    /// Minimal message type for exercising the adversaries in isolation.
    #[derive(Clone, Debug)]
    struct TestMsg(Option<RoundNum>);
    impl RoundTagged for TestMsg {
        fn constrained_round(&self) -> Option<RoundNum> {
            self.0
        }
    }

    #[test]
    fn fixed_delay_is_constant() {
        let mut adv = FixedDelay::new(Duration::from_ticks(4));
        let mut rng = SimRng::from_seed(0);
        for _ in 0..10 {
            let d = adv.delivery(
                Time::ZERO,
                ProcessId::new(0),
                ProcessId::new(1),
                &TestMsg(None),
                &mut rng,
            );
            assert_eq!(d, Delivery::After(Duration::from_ticks(4)));
        }
        assert!(Adversary::<TestMsg>::describe(&adv).contains("fixed"));
    }

    #[test]
    fn random_delay_within_bounds() {
        let mut adv = RandomDelay::new(DelayDist::uniform(
            Duration::from_ticks(2),
            Duration::from_ticks(6),
        ));
        let mut rng = SimRng::from_seed(1);
        for _ in 0..200 {
            match adv.delivery(
                Time::ZERO,
                ProcessId::new(0),
                ProcessId::new(1),
                &TestMsg(Some(RoundNum::new(3))),
                &mut rng,
            ) {
                Delivery::After(d) => {
                    assert!(d >= Duration::from_ticks(2) && d <= Duration::from_ticks(6))
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn random_delay_with_growth_reaches_unbounded_tail() {
        let mut adv = RandomDelay::new(
            DelayDist::uniform(Duration::from_ticks(1), Duration::from_ticks(3)).with_growth(
                GrowthFn::Linear {
                    per_round: 1,
                    divisor: 1,
                },
                Duration::from_ticks(10),
            ),
        );
        let mut rng = SimRng::from_seed(2);
        let mut max_seen = Duration::ZERO;
        for _ in 0..200 {
            let Delivery::After(d) = adv.delivery(
                Time::from_ticks(100_000),
                ProcessId::new(0),
                ProcessId::new(1),
                &TestMsg(None),
                &mut rng,
            ) else {
                panic!("expected After")
            };
            max_seen = max_seen.max(d);
        }
        // The support at t = 100 000 is [1, 3 + 10 000]; the tail must be hit.
        assert!(
            max_seen >= Duration::from_ticks(5_000),
            "max seen {max_seen}"
        );
    }

    #[test]
    fn eventually_synchronous_respects_gst() {
        let mut adv = EventuallySynchronous::new(
            Time::from_ticks(1000),
            Duration::from_ticks(5),
            DelayDist::uniform(Duration::from_ticks(100), Duration::from_ticks(200)),
        );
        let mut rng = SimRng::from_seed(3);
        let Delivery::After(before) = adv.delivery(
            Time::from_ticks(10),
            ProcessId::new(0),
            ProcessId::new(1),
            &TestMsg(None),
            &mut rng,
        ) else {
            panic!()
        };
        assert!(before >= Duration::from_ticks(100));
        for _ in 0..100 {
            let Delivery::After(after) = adv.delivery(
                Time::from_ticks(2000),
                ProcessId::new(0),
                ProcessId::new(1),
                &TestMsg(None),
                &mut rng,
            ) else {
                panic!()
            };
            assert!(after <= Duration::from_ticks(5));
        }
    }
}
