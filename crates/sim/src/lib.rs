//! Deterministic discrete-event simulation of the paper's system model.
//!
//! The paper — Fernández & Raynal, *From an intermittent rotating star to a
//! leader* — proves its algorithms correct against an abstract asynchronous
//! system `AS_{n,t}` in which an adversary controls every message transfer
//! delay, subject only to the behavioural assumption under study (`A′`, `A`,
//! `A_{f,g}`, or one of the special cases they generalise). This crate is
//! that system made executable:
//!
//! * [`Simulation`] drives `n` sans-IO protocol instances (anything
//!   implementing [`irs_types::Protocol`]) over a reliable network with a
//!   virtual clock, per-process timers and crash injection;
//! * [`adversary`] provides the delay/ordering models that realise each
//!   assumption, most importantly the [`adversary::star::StarAdversary`];
//! * [`CrashPlan`] injects crash-stop failures;
//! * [`Trace`], [`SimReport`] and [`Summary`] capture what experiments need
//!   to report.
//!
//! Determinism: given the same seed and configuration, a run produces the
//! same trace, byte for byte. All pseudo-randomness flows from [`SimRng`].
//!
//! # Example
//!
//! ```
//! use irs_sim::{adversary::basic::FixedDelay, CrashPlan, SimConfig, Simulation};
//! use irs_types::{Duration, Time};
//!
//! // The protocol type comes from another crate (e.g. `irs-omega`); here we
//! // only show the engine configuration surface.
//! let config = SimConfig::new(42, Time::from_ticks(100_000));
//! let adversary = FixedDelay::new(Duration::from_ticks(3));
//! let crashes = CrashPlan::new();
//! let _ = (config, adversary, crashes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
mod crash;
mod engine;
mod event;
mod rng;
mod stats;
mod trace;

pub use crash::CrashPlan;
pub use engine::{SimConfig, SimReport, Simulation, Stabilization};
pub use event::{Event, EventQueue};
pub use irs_obs::Histogram;
pub use rng::SimRng;
pub use stats::{percentage, Summary};
pub use trace::{LeaderChange, Trace, TraceCounters};
