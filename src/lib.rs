//! Umbrella crate for the *intermittent rotating star* workspace.
//!
//! This crate re-exports the workspace's public surface so that examples,
//! integration tests and downstream users can depend on a single name:
//!
//! * [`omega`] — the paper's Ω algorithms (Figures 1–3 and `A_{f,g}`);
//! * [`sim`] — the deterministic discrete-event simulator and the adversary
//!   models realising the paper's assumptions;
//! * [`baselines`] — earlier Ω algorithms used as comparison points;
//! * [`consensus`] — Ω-based indulgent consensus and the replicated log
//!   (Theorem 5);
//! * [`net`] — the pluggable transport subsystem: wire codec, in-memory /
//!   UDP-socket backends, fault-injecting link models;
//! * [`obs`] — dependency-free observability: the sharded metrics
//!   registry, the flight recorder, and Prometheus/JSON exposition;
//! * [`runtime`] — the real-time runtimes (sharded cluster, per-node
//!   deployments) over those transports;
//! * [`svc`] — the replicated key-value service on the Ω-driven log:
//!   deployable replicas, the redirecting client library, and the
//!   load-generator harness;
//! * [`experiments`] — the experiment harness behind `EXPERIMENTS.md`;
//! * [`types`] — the shared vocabulary (ids, time, rounds, the sans-IO
//!   [`types::Protocol`] trait).
//!
//! See the `examples/` directory for runnable entry points, starting with
//! `cargo run --example quickstart`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use irs_baselines as baselines;
pub use irs_consensus as consensus;
pub use irs_experiments as experiments;
pub use irs_net as net;
pub use irs_obs as obs;
pub use irs_omega as omega;
pub use irs_runtime as runtime;
pub use irs_sim as sim;
pub use irs_svc as svc;
pub use irs_types as types;
