//! A vendored, dependency-free stand-in for the parts of the `proptest` API
//! this workspace uses.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `proptest` cannot be pulled in. The test-suites only use a small,
//! stable slice of its API — the `proptest!` macro with `pattern in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`, integer/float range
//! strategies, and `collection::{vec, btree_set}` — so this crate implements
//! exactly that slice:
//!
//! * Cases are generated from a deterministic SplitMix64 stream seeded by the
//!   test-function name, so failures are reproducible run-to-run.
//! * There is no shrinking; a failing case panics with the generated inputs
//!   via the normal `assert!` message.
//! * `ProptestConfig::with_cases(n)` controls the number of cases; the
//!   default is 64.
//!
//! If the real `proptest` ever becomes available, deleting this crate and
//! pointing the workspace dependency at crates.io should be a no-op for the
//! test-suites.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Deterministic SplitMix64 stream used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Creates a stream seeded from a test name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of generated values. The stand-in equivalent of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64);

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + unit * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Always generates a clone of the given value (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with *target* size drawn from
    /// `size` (duplicates collapse, as in real proptest).
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets whose elements come from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The commonly imported surface (`proptest::prelude`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` function that generates `cases` inputs from the
/// strategies and runs the body for each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal item-by-item expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strat;)+
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = crate::TestRng::from_seed(8);
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..1000, 0..4).generate(&mut rng);
            assert!(s.len() < 4);
        }
    }

    #[test]
    fn determinism_per_name() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::from_name("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::from_name("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..50, ys in crate::collection::vec(0u64..5, 0..6)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 5).count(), 0);
        }
    }
}
