//! A vendored, dependency-free stand-in for the parts of the `criterion` API
//! the bench targets use.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `criterion` cannot be pulled in. This crate implements the same
//! builder surface (`benchmark_group`, `sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `bench_with_input`,
//! `criterion_group!`/`criterion_main!`) with a simple but honest measurement
//! loop:
//!
//! * one untimed warm-up call per benchmark,
//! * `sample_size` timed samples (bounded by `measurement_time`),
//! * median / min / max per-iteration wall-clock times printed in a
//!   machine-greppable single line per benchmark:
//!   `bench: <group>/<id> median <t> min <t> max <t> (<k> samples)`.
//!
//! Measured results can also be collected programmatically through
//! [`Criterion::take_results`], which the `engine_throughput` harness uses to
//! write `BENCH_engine.json`.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId {
            id: value.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        BenchmarkId { id: value }
    }
}

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full name, `<group>/<id>`.
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest per-iteration time.
    pub min: Duration,
    /// Slowest per-iteration time.
    pub max: Duration,
    /// Number of timed samples taken.
    pub samples: usize,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let result = run_benchmark(id.to_string(), 10, Duration::from_secs(3), &mut f);
        self.results.push(result);
        self
    }

    /// Drains the results measured so far (used by custom harnesses that
    /// post-process timings, e.g. to write a JSON trajectory file).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of related benchmarks sharing tuning.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the warm-up here is always exactly one
    /// untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into());
        let result = run_benchmark(name, self.sample_size, self.measurement_time, &mut f);
        self.criterion.results.push(result);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    last_iteration: Option<Duration>,
}

impl Bencher {
    /// Times one call of `f` (the routine under measurement).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let started = Instant::now();
        let out = f();
        self.last_iteration = Some(started.elapsed());
        let _ = black_box(out);
    }
}

/// An identity function that hides a value from the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark<F>(
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    // One untimed warm-up iteration.
    f(&mut bencher);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    let started = Instant::now();
    for _ in 0..sample_size {
        f(&mut bencher);
        samples.push(bencher.last_iteration.unwrap_or_default());
        if started.elapsed() > measurement_time {
            break;
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let result = BenchResult {
        name,
        median,
        min: samples[0],
        max: *samples.last().expect("at least one sample"),
        samples: samples.len(),
    };
    println!(
        "bench: {} median {:?} min {:?} max {:?} ({} samples)",
        result.name, result.median, result.min, result.max, result.samples
    );
    result
}

/// Declares a benchmark group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(200));
            group.bench_function("busy", |b| b.iter(|| (0..1000u64).sum::<u64>()));
            group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &k| {
                b.iter(|| (0..k).product::<u64>())
            });
            group.finish();
        }
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "g/busy");
        assert_eq!(results[1].name, "g/param/4");
        assert!(results
            .iter()
            .all(|r| r.samples >= 1 && r.min <= r.median && r.median <= r.max));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
