//! An Ω deployment as genuinely separate OS processes over UDP.
//!
//! The parent run spawns `n` copies of itself (`--child <id>`), each of
//! which joins a localhost UDP mesh through the shared re-exec handshake
//! (`irs_net::reexec`: `PORT`/`PEERS` over the children's stdio) and drives
//! one Figure 3 process with `irs-runtime`'s node event loop — the same
//! state machine the simulator runs, crossing a real kernel network stack
//! between address spaces. Each child reports its leader output once it has
//! been stable for two seconds; the parent checks that all `n` OS processes
//! agreed.
//!
//! Run with: `cargo run --release --example socket_cluster -- --n 8`
//!
//! Pass `--metrics` to instrument every node: each child process then
//! rewrites `<tmp>/irs-socket-cluster-node-<id>.prom` with its Prometheus
//! metrics twice a second while it runs. Because the instrumented path
//! runs `run_node_with_obs`, every such node also answers live
//! `ObsMsg::ScrapeRequest` datagrams on its mesh socket — point the
//! cluster collector (see `examples/kv_cluster.rs --scrape`) at the
//! printed ports to pull the registries over the wire instead of tailing
//! the dump files.

use intermittent_rotating_star::net::reexec;
use intermittent_rotating_star::obs::Obs;
use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::runtime::{
    accept_frame, run_node, run_node_with_obs, NodeConfig, NodeHandle,
};
use intermittent_rotating_star::types::{ProcessId, SystemConfig};
use std::io::BufRead;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// 500 µs per logical tick → one ALIVE broadcast every 5 ms per process.
const TICK: Duration = Duration::from_micros(500);

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn child(id: u32, n: usize, metrics: bool) {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    let transport = reexec::child_join_mesh(&mut lines, n);

    let system = SystemConfig::new(n, (n - 1) / 2).expect("system");
    let proto = OmegaProcess::fig3(ProcessId::new(id), system);
    let handle = NodeHandle::new();
    let observer = handle.clone();
    // --metrics: per-process registry + flight recorder, dumped to a
    // Prometheus text file twice a second while the node runs.
    let obs = metrics.then(|| std::sync::Arc::new(Obs::new(n)));
    let _dump_guard = obs.as_ref().map(|o| {
        let path = std::env::temp_dir().join(format!("irs-socket-cluster-node-{id}.prom"));
        eprintln!("[child {id}] dumping metrics to {}", path.display());
        o.start_dump(Duration::from_millis(500), path)
    });
    let node = std::thread::spawn(move || {
        let config = NodeConfig::new(n).with_tick(TICK);
        let me = ProcessId::new(id);
        match obs {
            Some(obs) => run_node_with_obs(
                proto,
                transport,
                config,
                handle,
                move |frame| accept_frame(frame, me, n),
                &obs,
            ),
            None => run_node(proto, transport, config, handle),
        }
    });

    // Report once our leader output has been stable for 2 s (cap 40 s).
    let started = Instant::now();
    let (mut last, mut since) = (None, Instant::now());
    let leader = loop {
        std::thread::sleep(Duration::from_millis(50));
        let snap = observer.snapshot.lock().expect("snapshot").clone();
        if Some(snap.leader) != last {
            last = Some(snap.leader);
            since = Instant::now();
        }
        let stable = snap.sending_round > 20 && since.elapsed() > Duration::from_secs(2);
        if stable || started.elapsed() > Duration::from_secs(40) {
            break snap.leader;
        }
    };
    println!("LEADER {}", leader.index());
    observer.stop.store(true, Ordering::SeqCst);
    node.join().expect("node thread");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(8, |v| v.parse().expect("--n"));
    let metrics = args.iter().any(|a| a == "--metrics");
    assert!(n >= 2, "--n must be at least 2");
    if let Some(id) = arg_value(&args, "--child") {
        child(id.parse().expect("child id"), n, metrics);
        return;
    }

    println!("spawning {n} node processes over localhost UDP …");
    let (mut children, mut readers) = reexec::spawn_self_children(n, |id, cmd| {
        cmd.args(["--child", &id.to_string(), "--n", &n.to_string()]);
        if metrics {
            cmd.arg("--metrics");
        }
    });
    let ports = reexec::exchange_peer_table(&mut children, &mut readers, &[]);
    println!(
        "peer table: {}",
        ports
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    );

    let leaders: Vec<String> = readers
        .iter_mut()
        .enumerate()
        .map(|(who, r)| reexec::read_tagged_line(r, "LEADER ", who))
        .collect();
    children.join_all();
    println!("per-process leader outputs: {leaders:?}");
    if leaders.iter().all(|l| l == &leaders[0]) {
        println!(
            "all {n} OS processes agree: leader is p{}",
            leaders[0].parse::<usize>().expect("index") + 1
        );
    } else {
        eprintln!("processes disagree on the leader!");
        std::process::exit(1);
    }
}
