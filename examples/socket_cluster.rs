//! An Ω deployment as genuinely separate OS processes over UDP.
//!
//! The parent run spawns `n` copies of itself (`--child <id>`), each of
//! which binds its own UDP socket on localhost, learns the peer table from
//! the parent, and drives one Figure 3 process with `irs-runtime`'s node
//! event loop over `irs-net`'s socket transport — the same state machine the
//! simulator runs, crossing a real kernel network stack between address
//! spaces. Each child reports its leader output once it has been stable for
//! two seconds; the parent checks that all `n` OS processes agreed.
//!
//! Run with: `cargo run --release --example socket_cluster -- --n 8`
//!
//! Wire protocol on the children's stdio: child → `PORT <port>`,
//! `LEADER <index>`; parent → `PEERS <port0> <port1> …`.

use intermittent_rotating_star::net::UdpTransport;
use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::runtime::{run_node, NodeConfig, NodeHandle};
use intermittent_rotating_star::types::{ProcessId, SystemConfig};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// 500 µs per logical tick → one ALIVE broadcast every 5 ms per process.
const TICK: Duration = Duration::from_micros(500);

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn child(id: u32, n: usize) {
    let mut transport = UdpTransport::bind(("127.0.0.1", 0)).expect("bind socket");
    println!("PORT {}", transport.local_addr().expect("addr").port());
    std::io::stdout().flush().expect("flush");

    let mut line = String::new();
    std::io::stdin().lock().read_line(&mut line).expect("stdin");
    let ports: Vec<u16> = line
        .trim()
        .strip_prefix("PEERS ")
        .expect("PEERS line")
        .split_whitespace()
        .map(|p| p.parse().expect("port"))
        .collect();
    assert_eq!(ports.len(), n);
    transport.set_peers(
        ports
            .iter()
            .map(|&p| (std::net::Ipv4Addr::LOCALHOST, p).into())
            .collect(),
    );

    let system = SystemConfig::new(n, (n - 1) / 2).expect("system");
    let proto = OmegaProcess::fig3(ProcessId::new(id), system);
    let handle = NodeHandle::new();
    let observer = handle.clone();
    let node = std::thread::spawn(move || {
        run_node(proto, transport, NodeConfig::new(n).with_tick(TICK), handle)
    });

    // Report once our leader output has been stable for 2 s (cap 40 s).
    let started = Instant::now();
    let (mut last, mut since) = (None, Instant::now());
    let leader = loop {
        std::thread::sleep(Duration::from_millis(50));
        let snap = observer.snapshot.lock().expect("snapshot").clone();
        if Some(snap.leader) != last {
            last = Some(snap.leader);
            since = Instant::now();
        }
        let stable = snap.sending_round > 20 && since.elapsed() > Duration::from_secs(2);
        if stable || started.elapsed() > Duration::from_secs(40) {
            break snap.leader;
        }
    };
    println!("LEADER {}", leader.index());
    std::io::stdout().flush().expect("flush");
    observer.stop.store(true, Ordering::SeqCst);
    node.join().expect("node thread");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(8, |v| v.parse().expect("--n"));
    assert!(n >= 2, "--n must be at least 2");
    if let Some(id) = arg_value(&args, "--child") {
        child(id.parse().expect("child id"), n);
        return;
    }

    let exe = std::env::current_exe().expect("own binary");
    println!("spawning {n} node processes over localhost UDP …");
    let mut children: Vec<_> = (0..n)
        .map(|id| {
            Command::new(&exe)
                .args(["--child", &id.to_string(), "--n", &n.to_string()])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn child")
        })
        .collect();
    let mut readers: Vec<_> = children
        .iter_mut()
        .map(|c| BufReader::new(c.stdout.take().expect("stdout")))
        .collect();

    let read_tag = |reader: &mut BufReader<std::process::ChildStdout>, tag: &str| -> String {
        loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("child stdout") > 0,
                "child exited before sending {tag}"
            );
            if let Some(rest) = line.trim().strip_prefix(tag) {
                return rest.trim().to_string();
            }
        }
    };

    let ports: Vec<String> = readers.iter_mut().map(|r| read_tag(r, "PORT ")).collect();
    println!("peer table: {}", ports.join(" "));
    let peers = format!("PEERS {}\n", ports.join(" "));
    for c in &mut children {
        c.stdin
            .as_mut()
            .expect("stdin")
            .write_all(peers.as_bytes())
            .expect("send peers");
    }

    let leaders: Vec<String> = readers.iter_mut().map(|r| read_tag(r, "LEADER ")).collect();
    for c in &mut children {
        let status = c.wait().expect("child status");
        assert!(status.success(), "child failed: {status}");
    }
    println!("per-process leader outputs: {leaders:?}");
    if leaders.iter().all(|l| l == &leaders[0]) {
        println!(
            "all {n} OS processes agree: leader is p{}",
            leaders[0].parse::<usize>().expect("index") + 1
        );
    } else {
        eprintln!("processes disagree on the leader!");
        std::process::exit(1);
    }
}
