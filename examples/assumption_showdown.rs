//! Assumption showdown: run the paper's algorithm and the three baselines
//! under several published assumptions and print who stabilises where.
//!
//! This is a command-line rendition of experiment E6 (the assumption
//! matrix). Background delays *grow without bound*, so only the messages the
//! assumption explicitly protects remain usable forever — that is what
//! separates the algorithms.
//!
//! Run with: `cargo run --release --example assumption_showdown`

use intermittent_rotating_star::experiments::{
    Aggregate, Algorithm, Assumption, Background, Scenario,
};

fn main() {
    let algorithms = [
        Algorithm::Fig3,
        Algorithm::TimeoutAll,
        Algorithm::TSourceCounter,
        Algorithm::MessagePatternMMR,
    ];
    let assumptions = [
        Assumption::EventuallySynchronous,
        Assumption::TSource,
        Assumption::MessagePattern,
        Assumption::RotatingStar,
        Assumption::Intermittent { d: 4 },
    ];

    println!("{:<18}", "algorithm");
    for algorithm in algorithms {
        print!("{:<18}", algorithm.label());
        for assumption in assumptions {
            let scenario = Scenario::new("showdown", 4, 1, algorithm, assumption)
                .with_background(Background::Growing)
                .with_horizon(120_000, 15_000)
                .with_seeds(&[1, 2]);
            let agg = Aggregate::from_outcomes(&scenario.run());
            let cell = if agg.stabilized == agg.runs {
                "elects"
            } else if agg.stabilized == 0 {
                "fails"
            } else {
                "mixed"
            };
            print!("{:<22}", format!("{}: {}", assumption.label(), cell));
        }
        println!();
    }
    println!();
    println!("`fig3` is the paper's algorithm (Figure 3): it is the only one that");
    println!("stabilises under every assumption column, because each column is a");
    println!("special case of the intermittent rotating t-star.");
}
