//! A tiny replicated key-value store on top of the Ω-based replicated log
//! (Theorem 5 put to work).
//!
//! Each replica submits `SET` commands (encoded as 64-bit values); the
//! replicated log totally orders them; every replica applies the decided
//! prefix to its local map and all maps end up identical — state-machine
//! replication in its smallest form.
//!
//! Run with: `cargo run --release --example consensus_kv`

use intermittent_rotating_star::consensus::{ReplicatedLog, Value};
use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::sim::adversary::star::{StarAdversary, StarConfig};
use intermittent_rotating_star::sim::{CrashPlan, SimConfig, Simulation};
use intermittent_rotating_star::types::{ProcessId, SystemConfig, Time};
use std::collections::BTreeMap;

/// Encode a `SET key value` command into the log's 64-bit value domain.
fn encode(key: u8, value: u32) -> Value {
    Value(((key as u64) << 32) | value as u64)
}

/// Decode a log entry back into `(key, value)`.
fn decode(v: Value) -> (u8, u32) {
    ((v.0 >> 32) as u8, v.0 as u32)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemConfig::new(5, 2)?;
    let center = ProcessId::new(3);

    let replicas: Vec<ReplicatedLog<OmegaProcess>> = system
        .processes()
        .map(|id| {
            let mut replica = ReplicatedLog::over_omega(id, system);
            // Every replica wants to write its own key twice.
            let key = id.as_u32() as u8;
            replica.submit(encode(key, 1));
            replica.submit(encode(key, 2));
            replica
        })
        .collect();

    let adversary = StarAdversary::new(StarConfig::a_prime(system, center), 3);
    let mut sim = Simulation::new(
        SimConfig::new(99, Time::from_ticks(400_000)),
        replicas,
        adversary,
        CrashPlan::new(),
    );

    // Run until every replica has applied at least six commands.
    sim.start();
    while sim.step() {
        let done = system.processes().all(|p| sim.process(p).log().len() >= 6);
        if done {
            break;
        }
    }

    for id in system.processes() {
        let log = sim.process(id).log();
        let mut store: BTreeMap<u8, u32> = BTreeMap::new();
        for entry in &log {
            let (k, v) = decode(*entry);
            store.insert(k, v);
        }
        println!("{id}: applied {} commands, store = {:?}", log.len(), store);
    }
    let reference = sim.process(ProcessId::new(0)).log();
    let identical = system.processes().all(|p| {
        let log = sim.process(p).log();
        log.len() >= reference.len().min(6)
            && log[..6.min(log.len())] == reference[..6.min(reference.len())]
    });
    println!(
        "replicas agree on the common prefix: {}",
        if identical { "yes" } else { "no" }
    );
    Ok(())
}
