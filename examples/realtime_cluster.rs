//! The same Ω state machines on real threads and wall-clock timers.
//!
//! Spawns a four-process cluster of the Figure 3 algorithm with jittered
//! in-memory links, waits for a stable leader, crashes it, and waits for the
//! re-election — all in real time (a few hundred milliseconds).
//!
//! Run with: `cargo run --release --example realtime_cluster`

use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::runtime::{Cluster, LinkDelay, RealtimeConfig};
use intermittent_rotating_star::types::SystemConfig;
use std::time::{Duration, Instant};

fn wait_for(limit: Duration, check: impl Fn() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < limit {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    check()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemConfig::new(4, 1)?;
    let processes: Vec<OmegaProcess> = system
        .processes()
        .map(|id| OmegaProcess::fig3(id, system))
        .collect();

    let cluster = Cluster::spawn(
        processes,
        RealtimeConfig::default(),
        LinkDelay::Jitter {
            min: Duration::from_micros(50),
            max: Duration::from_millis(2),
        },
    );

    let elected = wait_for(Duration::from_secs(15), || {
        cluster.agreed_leader().is_some()
    });
    let leader = cluster.agreed_leader();
    println!("initial election: agreed = {elected}, leader = {leader:?}");
    println!("messages routed so far: {}", cluster.messages_routed());

    if let Some(leader) = leader {
        println!("crashing {leader} …");
        cluster.crash(leader);
        let replaced = wait_for(Duration::from_secs(30), || {
            cluster.agreed_leader().is_some_and(|l| l != leader)
        });
        println!(
            "re-election: agreed on a new leader = {replaced}, leaders = {:?}",
            cluster.leaders()
        );
    }

    let finals = cluster.shutdown();
    for process in &finals {
        let snapshot = irs_types::Introspect::snapshot(process);
        println!(
            "p{}: rounds sent = {}, susp_levels = {:?}",
            irs_types::Protocol::id(process).display_index(),
            snapshot.sending_round,
            snapshot.susp_levels
        );
    }
    Ok(())
}
