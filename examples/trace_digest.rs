//! Prints the full `TraceCounters` and leader history for a few fixed
//! `(seed, config)` runs. Used to verify that engine refactors preserve
//! behaviour byte-for-byte: run before and after, diff the output.

use intermittent_rotating_star::experiments::{Algorithm, Assumption, Background, Scenario};
use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::sim::adversary::presets;
use intermittent_rotating_star::sim::{CrashPlan, SimConfig, Simulation};
use intermittent_rotating_star::types::{Duration, ProcessId, SystemConfig, Time};

fn main() {
    // Raw engine run: fig3, intermittent star, one crash, fixed seed.
    let system = SystemConfig::new(5, 2).unwrap();
    let center = ProcessId::new(4);
    for seed in [1u64, 42, 99] {
        let adversary = presets::intermittent_rotating_star(
            system,
            center,
            Duration::from_ticks(8),
            4,
            intermittent_rotating_star::sim::adversary::DelayDist::uniform(
                Duration::from_ticks(1),
                Duration::from_ticks(60),
            ),
            seed,
        );
        let processes: Vec<OmegaProcess> = system
            .processes()
            .map(|id| OmegaProcess::fig3(id, system))
            .collect();
        let mut sim = Simulation::new(
            SimConfig::new(seed, Time::from_ticks(150_000)),
            processes,
            adversary,
            CrashPlan::new().crash(ProcessId::new(0), Time::from_ticks(20_000)),
        );
        let report = sim.run();
        println!("seed {seed}: {:?}", report.counters);
        println!(
            "seed {seed}: history {:?} stab {:?}",
            report.leader_history, report.stabilization
        );
    }

    // Through the scenario layer (every assumption dispatch path).
    for assumption in [
        Assumption::RotatingStar,
        Assumption::Intermittent { d: 4 },
        Assumption::MessagePattern,
        Assumption::EventuallySynchronous,
    ] {
        let scenario = Scenario::new("digest", 5, 2, Algorithm::Fig3, assumption)
            .with_background(Background::Growing)
            .with_crash(1, 25_000)
            .with_horizon(120_000, 0)
            .with_seeds(&[7, 8]);
        for outcome in scenario.run() {
            println!(
                "{}: msgs {} bytes {} stab {:?} leader {:?} maxsusp {} rounds {}",
                assumption.label(),
                outcome.messages_sent,
                outcome.bytes_sent,
                outcome.stabilization_ticks,
                outcome.leader,
                outcome.max_susp_level,
                outcome.rounds_closed,
            );
        }
    }
}
