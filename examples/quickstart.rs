//! Quickstart: elect an eventual leader under the paper's assumption `A′`.
//!
//! Five processes run the Figure 3 algorithm; the adversary guarantees only
//! that process `p5` is the centre of a rotating t-star (two of the other
//! processes per round receive its `ALIVE` timely or among the first `n − t`).
//! Everything else about the network is arbitrary. A common leader is
//! nevertheless eventually elected.
//!
//! Run with: `cargo run --release --example quickstart`

use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::sim::adversary::star::{StarAdversary, StarConfig};
use intermittent_rotating_star::sim::{CrashPlan, SimConfig, Simulation};
use intermittent_rotating_star::types::{Duration, ProcessId, SystemConfig, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemConfig::new(5, 2)?;
    let center = ProcessId::new(4);

    let processes: Vec<OmegaProcess> = system
        .processes()
        .map(|id| OmegaProcess::fig3(id, system))
        .collect();
    let adversary = StarAdversary::new(StarConfig::a_prime(system, center), 7);

    let mut sim = Simulation::new(
        SimConfig::new(42, Time::from_ticks(300_000)),
        processes,
        adversary,
        CrashPlan::new(),
    );
    let report = sim.run_until_stable_for(Duration::from_ticks(20_000));

    println!("adversary      : {}", report.adversary);
    println!("simulated time : {} ticks", report.final_time);
    println!("messages sent  : {}", report.counters.messages_sent);
    match report.stabilization {
        Some(stab) => {
            println!(
                "leader elected : {} (stable since t = {})",
                stab.leader, stab.at
            );
            for (i, snap) in report.final_snapshots.iter().enumerate() {
                if let Some(snap) = snap {
                    println!(
                        "  {}: leader = {}, susp_level = {:?}",
                        ProcessId::new(i as u32),
                        snap.leader,
                        snap.susp_levels
                    );
                }
            }
        }
        None => println!("no stable leader within the horizon (unexpected under A′)"),
    }
    Ok(())
}
