//! Wall-clock probe of one fixed-horizon large-`n` engine run.
//!
//! Used to compare builds (e.g. pre/post a representation change) on the same
//! container: `cargo run --release --example large_n_probe [n] [horizon] [deltaR]`.

use intermittent_rotating_star::experiments::{Algorithm, Assumption, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);
    let horizon: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(6_000);
    let delta: Option<u64> = args
        .next()
        .and_then(|a| a.strip_prefix("delta").map(|r| r.parse().unwrap_or(8)));
    assert!(n >= 2, "n must be at least 2");
    let t = (n - 1) / 2;
    let mut scenario = Scenario::new(
        "large-n-probe",
        n,
        t,
        Algorithm::Fig3,
        Assumption::RotatingStar,
    )
    .with_horizon(horizon, 0)
    .with_seeds(&[1]);
    if let Some(refresh_every) = delta {
        scenario = scenario.with_delta_gossip(refresh_every);
    }
    let started = std::time::Instant::now();
    let outcome = &scenario.run()[0];
    let elapsed = started.elapsed();
    let events = outcome.messages_sent + outcome.rounds_closed;
    println!(
        "n={n} horizon={horizon}: {events} events in {:.3}s -> {:.0} events/s (stab={})",
        elapsed.as_secs_f64(),
        events as f64 / elapsed.as_secs_f64(),
        outcome.stabilized,
    );
}
