//! Bounded variables in action (Section 6 of the paper).
//!
//! The same schedule — a rotating star plus one crashed process — is run
//! under Figure 1, Figure 2 and Figure 3. The Figure 1/2 algorithms keep
//! increasing suspicion levels (and therefore timeout values) for the crashed
//! process forever; Figure 3's line `**` keeps every suspicion level within
//! `B + 1` and the timers bounded, which is the paper's headline engineering
//! property ("eventually, even the timeout values stop increasing").
//!
//! Run with: `cargo run --release --example bounded_timers`

use intermittent_rotating_star::experiments::{Algorithm, Assumption, Scenario};
use intermittent_rotating_star::types::ProcessId;

fn main() {
    println!("n = 5, t = 2, rotating star at p5, p2 crashes at t = 10 000");
    println!();
    println!(
        "{:<10} {:>14} {:>16} {:>12} {:>10}",
        "variant", "max susp level", "max timer (ticks)", "max spread", "B+1 bound"
    );
    for algorithm in [Algorithm::Fig1, Algorithm::Fig2, Algorithm::Fig3] {
        let scenario = Scenario::new("bounded-timers", 5, 2, algorithm, Assumption::RotatingStar)
            .with_center(ProcessId::new(4))
            .with_crash(1, 10_000)
            .with_horizon(200_000, 0)
            .with_seeds(&[13]);
        let outcome = &scenario.run()[0];
        println!(
            "{:<10} {:>14} {:>16} {:>12} {:>10}",
            algorithm.label(),
            outcome.max_susp_level,
            outcome.max_timer_ticks,
            outcome.susp_spread,
            if outcome.theorem4_holds {
                "holds"
            } else {
                "violated"
            },
        );
    }
    println!();
    println!("Figure 3 keeps the suspicion levels within one of each other (Lemma 8)");
    println!("and therefore keeps every timer value bounded, while Figures 1 and 2");
    println!("let the crashed process's level — and with it the timers — grow forever.");
}
