//! The replicated KV service as separate OS processes over localhost UDP,
//! under client load.
//!
//! The parent spawns `n` replica processes (`--child <id>`), each of which
//! joins the UDP mesh through the shared re-exec handshake
//! (`irs_net::reexec`) and drives one `SvcReplica` with `run_svc_node` —
//! the same state machines the simulator runs, now serving writes across
//! the kernel network stack. The parent then connects `c` closed-loop
//! clients over their own sockets, drives load for a couple of seconds,
//! prints ops/s with p50/p99 latency, and finally checks that every
//! replica process reports the same store digest (`DIGEST <hex> <applied>`
//! after `STOP`).
//!
//! Run with: `cargo run --release --example kv_cluster -- --n 5 --clients 3`
//!
//! Pass `--metrics` to instrument every replica: each child process then
//! rewrites `<tmp>/irs-kv-cluster-node-<id>.prom` with its Prometheus
//! metrics twice a second while it runs (scrape it with any file-tailing
//! collector), and prints the path it dumps to.
//!
//! Pass `--scrape` to pull the same telemetry live over the wire instead:
//! every replica joins the scrape plane (the node loop answers
//! `ObsMsg::ScrapeRequest` datagrams in-handler), and the parent — which
//! shares no filesystem state with its children beyond the spawn — runs
//! the cluster collector mid-load over one extra UDP endpoint, merges the
//! per-process registries, writes `<tmp>/irs-kv-cluster-cluster.prom`
//! atomically, and prints the leader-reign SLO summary.

use intermittent_rotating_star::net::{reexec, TransportScraper, UdpTransport};
use intermittent_rotating_star::obs::collector::ClusterScrape;
use intermittent_rotating_star::obs::Obs;
use intermittent_rotating_star::runtime::NodeHandle;
use intermittent_rotating_star::svc::loadgen::{closed_loop, ClosedLoopOptions};
use intermittent_rotating_star::svc::{run_svc_node, SvcClient, SvcConfig};
use intermittent_rotating_star::types::ProcessId;
use std::io::BufRead;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// 500 µs per logical tick → gentle consensus timers across OS processes.
const TICK: Duration = Duration::from_micros(500);

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn child(id: u32, n: usize, clients: usize, metrics: bool, scrape: bool) {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    // With --scrape the mesh has one extra endpoint: the parent's
    // collector socket, right after the client endpoints.
    let extra = usize::from(scrape);
    let transport = reexec::child_join_mesh(&mut lines, n + clients + extra);

    let mut config = SvcConfig::new(n, clients).with_tick(TICK);
    // --metrics: a full Obs (registry + flight recorder) per replica
    // process, with a periodic Prometheus text dump as the scrape surface.
    // --scrape attaches the same Obs but serves it over the wire instead:
    // run_svc_node answers scrape datagrams in-handler, no dump needed.
    let mut dump_guard = None;
    if metrics || scrape {
        let obs = std::sync::Arc::new(Obs::new(n));
        if metrics {
            let path = std::env::temp_dir().join(format!("irs-kv-cluster-node-{id}.prom"));
            eprintln!("[child {id}] dumping metrics to {}", path.display());
            dump_guard = Some(obs.start_dump(Duration::from_millis(500), path));
        }
        config = config.with_obs(obs);
    }
    let replica = config.replica(ProcessId::new(id));
    let handle = NodeHandle::new();
    let observer = handle.clone();
    let node = std::thread::spawn(move || run_svc_node(replica, transport, config, handle));

    for line in lines {
        if line.expect("stdin").trim() == "STOP" {
            break;
        }
    }
    observer.stop.store(true, Ordering::SeqCst);
    let replica = node.join().expect("node thread");
    drop(dump_guard); // final metrics dump before the digest report
    println!(
        "DIGEST {:x} {}",
        replica.store().digest(),
        replica.store().applied()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = arg_value(&args, "--n").map_or(5, |v| v.parse().expect("--n"));
    let clients: usize = arg_value(&args, "--clients").map_or(3, |v| v.parse().expect("--clients"));
    let secs: u64 = arg_value(&args, "--secs").map_or(2, |v| v.parse().expect("--secs"));
    let metrics = args.iter().any(|a| a == "--metrics");
    let scrape = args.iter().any(|a| a == "--scrape");
    assert!(n >= 3, "--n must be at least 3");
    assert!(clients >= 1, "--clients must be at least 1");
    if let Some(id) = arg_value(&args, "--child") {
        child(id.parse().expect("child id"), n, clients, metrics, scrape);
        return;
    }

    println!("spawning {n} replica processes over localhost UDP …");
    let (mut children, mut readers) = reexec::spawn_self_children(n, |id, cmd| {
        cmd.args([
            "--child",
            &id.to_string(),
            "--n",
            &n.to_string(),
            "--clients",
            &clients.to_string(),
        ]);
        if metrics {
            cmd.arg("--metrics");
        }
        if scrape {
            cmd.arg("--scrape");
        }
    });

    // One socket per client, endpoints n..n+clients — plus, with --scrape,
    // one collector endpoint at n+clients.
    let mut client_transports: Vec<UdpTransport> = (0..clients)
        .map(|_| UdpTransport::bind_localhost_retry().expect("bind client socket"))
        .collect();
    let mut collector_transport =
        scrape.then(|| UdpTransport::bind_localhost_retry().expect("bind collector socket"));
    let mut parent_ports: Vec<u16> = client_transports
        .iter()
        .map(|t| t.local_addr().expect("addr").port())
        .collect();
    if let Some(t) = &collector_transport {
        parent_ports.push(t.local_addr().expect("addr").port());
    }
    let replica_ports = reexec::exchange_peer_table(&mut children, &mut readers, &parent_ports);
    let all_addrs: Vec<_> = replica_ports
        .iter()
        .chain(parent_ports.iter())
        .map(|&p| reexec::localhost(p))
        .collect();
    for t in &mut client_transports {
        t.set_peers(all_addrs.clone());
    }
    if let Some(t) = &mut collector_transport {
        t.set_peers(all_addrs.clone());
    }

    let mut svc_clients: Vec<SvcClient<UdpTransport>> = client_transports
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            SvcClient::new(
                ProcessId::new((n + i) as u32),
                n,
                t,
                0xC11E_57AD ^ (i as u64 + 1),
            )
        })
        .collect();

    println!("driving {clients} closed-loop clients for {secs}s …");
    let load = std::thread::spawn(move || {
        let (report, _acked) = closed_loop(
            &mut svc_clients,
            ClosedLoopOptions {
                duration: Duration::from_secs(secs),
                ..ClosedLoopOptions::default()
            },
        );
        report
    });

    // --scrape: while the clients hammer the replicas, pull every replica
    // process's registry over the wire, merge, and persist atomically.
    if let Some(t) = collector_transport.take() {
        std::thread::sleep(Duration::from_millis((secs * 1000 / 2).max(200)));
        let collector_id = ProcessId::new((n + clients) as u32);
        let mut scraper = TransportScraper::new(t, collector_id)
            .with_timeout(Duration::from_millis(250))
            .with_retries(8);
        let cluster = ClusterScrape::collect(&mut scraper, n as u32).expect("live scrape");
        let merged = cluster.render_prometheus().expect("merge scrapes");
        assert!(
            merged.contains("omega_reign_ms"),
            "merged artifact is missing the leader-reign SLO panel"
        );
        let path = std::env::temp_dir().join("irs-kv-cluster-cluster.prom");
        cluster.write_prometheus(&path).expect("write artifact");
        println!("scraped {n} live processes mid-load -> {}", path.display());
        match cluster.reign_stats().expect("reign stats") {
            Some(stats) => println!("{}", stats.render()),
            None => println!("(no reign panel in scrape)"),
        }
    }

    let report = load.join().expect("load thread");
    println!(
        "load: {:.0} ops/s, p50 {} µs, p99 {} µs ({} acked, {} failures, {} redirects)",
        report.ops_per_sec(),
        report.latency.percentile(50.0),
        report.latency.percentile(99.0),
        report.ops,
        report.failures,
        report.redirects,
    );

    // Settle, stop, compare.
    std::thread::sleep(Duration::from_secs(2));
    reexec::broadcast_line(&mut children, "STOP");
    let digests: Vec<String> = readers
        .iter_mut()
        .enumerate()
        .map(|(who, r)| reexec::read_tagged_line(r, "DIGEST ", who))
        .collect();
    children.join_all();
    println!("per-process store digests: {digests:?}");
    let first = digests[0].split_whitespace().next().expect("digest");
    if digests
        .iter()
        .all(|d| d.split_whitespace().next() == Some(first))
    {
        println!("all {n} OS processes hold identical stores (digest {first})");
    } else {
        eprintln!("replica processes diverged!");
        std::process::exit(1);
    }
}
