//! Leader failover: the elected leader crashes and the system re-elects.
//!
//! This is the scenario the Ω abstraction exists for: an application (e.g. a
//! replicated service using consensus) needs *some* correct process to be
//! eventually recognised as the single coordinator, even as coordinators
//! crash. The example crashes the lowest-id process (the initial leader) and
//! then the next one, and prints the agreement timeline.
//!
//! Run with: `cargo run --release --example leader_failover`

use intermittent_rotating_star::omega::OmegaProcess;
use intermittent_rotating_star::sim::adversary::star::{StarAdversary, StarConfig};
use intermittent_rotating_star::sim::{CrashPlan, SimConfig, Simulation};
use intermittent_rotating_star::types::{ProcessId, SystemConfig, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = SystemConfig::new(5, 2)?;
    let center = ProcessId::new(4);

    let processes: Vec<OmegaProcess> = system
        .processes()
        .map(|id| OmegaProcess::fig3(id, system))
        .collect();
    let adversary = StarAdversary::new(StarConfig::a_prime(system, center), 11);
    let crashes = CrashPlan::new()
        .crash(ProcessId::new(0), Time::from_ticks(60_000))
        .crash(ProcessId::new(1), Time::from_ticks(140_000));

    let mut sim = Simulation::new(
        SimConfig::new(7, Time::from_ticks(300_000)),
        processes,
        adversary,
        crashes,
    );
    let report = sim.run();

    println!("agreement timeline (time, agreed leader):");
    for change in &report.leader_history {
        match change.agreed {
            Some(leader) => println!("  t = {:>7}  leader = {}", change.at, leader),
            None => println!("  t = {:>7}  (disagreement)", change.at),
        }
    }
    println!("crashed processes: {:?}", report.crashed);
    match report.stabilization {
        Some(stab) => println!(
            "final leader {} elected at t = {} and never contested again",
            stab.leader, stab.at
        ),
        None => println!("no stable leader at the end of the horizon"),
    }
    Ok(())
}
